#include "sampler.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "sim/system.hh"

namespace vsmooth::sim {

namespace {

/** First skip jumps this many window replays; doubles per confirmed
 *  skip up to SamplingConfig::maxSkipWindows. */
constexpr Cycles kInitialSkipWindows = 4;

// Window-similarity tolerances: a candidate window matches the
// reference when its mean deviation, deviation envelope, and per-core
// work totals agree within a fraction of the reference's own spread
// plus an absolute floor (the floor keeps near-constant phases from
// demanding exact equality of noisy statistics).
constexpr double kMeanTolFrac = 0.25;
constexpr double kMeanTolAbs = 5e-4;
constexpr double kEnvTolFrac = 0.5;
constexpr double kEnvTolAbs = 1.5e-3;
constexpr double kInstrTolFrac = 0.30;
constexpr double kInstrTolAbs = 64.0;
constexpr double kStallTolFrac = 0.40;
constexpr double kStallTolAbs = 96.0;

// Error-bound construction constants. Each extrapolated quantity gets
// a drift term — the within-phase window-to-window dispersion, scaled
// by the number of replayed windows — plus a realization term covering
// the divergence of the exact and sampled runs' stochastic streams
// after the first skip (CLT-style, sqrt of the observed total). The
// factors are calibrated against the `sampled_within_bounds`
// differential fuzz property with a >= 4x margin over the worst
// observed error; see DESIGN.md "Sampled execution".
constexpr double kEvSlackFrac = 0.5;
constexpr double kEvSlackAbs = 4.0;
constexpr double kEvFloor = 16.0;
constexpr double kEvRealiz = 8.0;
constexpr double kInstrSlackFrac = 0.10;
constexpr double kInstrSlackAbs = 64.0;
constexpr double kInstrFloor = 256.0;
constexpr double kInstrRealiz = 16.0;
constexpr double kStallSlackFrac = 0.25;
constexpr double kStallSlackAbs = 96.0;
constexpr double kStallFloor = 256.0;
constexpr double kStallRealiz = 16.0;
// Extreme-value terms: the deepest droop the unsimulated stretches
// (and the post-divergence realization of the simulated ones) could
// have added beyond the observed extreme scales with the dispersion
// of per-window extremes, not the full intra-window swing — a phase
// whose windows all bottom out within a hair of each other cannot
// hide a much deeper minimum (Gumbel-type extreme spacing).
constexpr double kExtremeFrac = 2.0;
constexpr double kExtremeAbs = 0.005;
// OS-tick restart surges produce the global extremes; both runs
// simulate every surge but as different realizations once the
// streams diverge, and surge windows reset the reference so their
// depth dispersion is not captured by droopSpreadMax_.
constexpr double kTickTailSlack = 0.03;
constexpr double kTlFrac = 2.0;
constexpr double kTlFloorAbs = 20.0;
constexpr double kTlFloorScale = 30000.0;
// CDF-fraction terms: replayed mass is drawn from distributions
// within the phase's observed window-to-reference Kolmogorov-Smirnov
// distance of the truth, so any CDF query moves by at most the
// extrapolated fraction times that distance (plus estimation slack
// for it having been measured on finitely many windows). KS — the
// sup of the CDF gap — is the right dispersion here: it bounds every
// fraction query directly and its sampling noise is O(1/sqrt(n)),
// where per-bin total variation would drown in multinomial noise.
constexpr double kKsEstSlack = 0.02;
constexpr double kFracRealiz = 6.0;
constexpr double kFracFloor = 0.002;

/** Kolmogorov-Smirnov distance between two single-window deviation
 *  histograms (largest CDF gap over bin edges and tails), in [0, 1]. */
double
ksDistance(const Histogram &a, const Histogram &b)
{
    const auto na = static_cast<double>(a.totalCount());
    const auto nb = static_cast<double>(b.totalCount());
    if (na == 0.0 || nb == 0.0)
        return na == nb ? 0.0 : 1.0;
    double ca = static_cast<double>(a.underflowCount()) / na;
    double cb = static_cast<double>(b.underflowCount()) / nb;
    double d = std::abs(ca - cb);
    for (std::size_t i = 0; i < a.numBins(); ++i) {
        ca += static_cast<double>(a.binCount(i)) / na;
        cb += static_cast<double>(b.binCount(i)) / nb;
        d = std::max(d, std::abs(ca - cb));
    }
    return d;
}

std::uint64_t
maxOf(const std::vector<std::uint64_t> &v)
{
    std::uint64_t m = 0;
    for (std::uint64_t x : v)
        m = std::max(m, x);
    return m;
}

} // namespace

double
SamplingReport::simulatedFraction() const
{
    const Cycles total = simulatedCycles + extrapolatedCycles;
    if (total == 0)
        return 1.0;
    return static_cast<double>(simulatedCycles) /
        static_cast<double>(total);
}

std::vector<std::pair<std::string, double>>
SamplingReport::namedBounds() const
{
    return {
        {"max_droop", maxDroopBound},
        {"max_overshoot", maxOvershootBound},
        {"event_count", eventCountBound},
        {"deepest_event", deepestEventBound},
        {"timeline_element", timelineElementBound},
        {"core_instructions", coreInstructionBound},
        {"core_stall_cycles", coreStallCycleBound},
        {"hist_fraction", histFractionBound},
    };
}

void
SamplingReport::merge(const SamplingReport &other)
{
    active = active || other.active;
    simulatedCycles += other.simulatedCycles;
    extrapolatedCycles += other.extrapolatedCycles;
    skips += other.skips;
    // Extreme-value bounds (deepest droop/overshoot seen anywhere in
    // the population) and fraction bounds (mass-weighted averages of
    // per-run fractions) are covered by the worst contributing run.
    maxDroopBound = std::max(maxDroopBound, other.maxDroopBound);
    maxOvershootBound =
        std::max(maxOvershootBound, other.maxOvershootBound);
    deepestEventBound =
        std::max(deepestEventBound, other.deepestEventBound);
    timelineElementBound =
        std::max(timelineElementBound, other.timelineElementBound);
    histFractionBound =
        std::max(histFractionBound, other.histFractionBound);
    // Count bounds cover *summed* counts, so per-run errors add.
    eventCountBound += other.eventCountBound;
    coreInstructionBound += other.coreInstructionBound;
    coreStallCycleBound += other.coreStallCycleBound;
}

PhaseSampler::PhaseSampler(System &sys, const SamplingConfig &cfg)
    : sys_(sys), cfg_(cfg),
      windowCycles_(static_cast<Cycles>(cfg.windowBlocks) *
                    System::kBlockCycles),
      winHist_(sys.scope_.histogram().lowerEdge(),
               sys.scope_.histogram().upperEdge(),
               sys.scope_.histogram().numBins()),
      refHist_(winHist_),
      skipWindows_(std::min<Cycles>(kInitialSkipWindows,
                                    cfg.maxSkipWindows))
{
    if (cfg_.windowBlocks == 0)
        fatal("PhaseSampler: windowBlocks must be positive");
    if (cfg_.stableWindows == 0)
        fatal("PhaseSampler: stableWindows must be positive");
    if (cfg_.maxSkipWindows == 0)
        fatal("PhaseSampler: maxSkipWindows must be positive");
    if (!(cfg_.guardBand >= 0.0))
        fatal("PhaseSampler: guardBand must be non-negative");
    snapBankEvents_.resize(sys_.bank_.size());
    snapCounters_.resize(sys_.cores_.size());
}

void
PhaseSampler::beginWindow()
{
    winDevSum_ = 0.0;
    winDevMin_ = 1e9;
    winDevMax_ = -1e9;
    winHist_.clear();
    for (std::size_t i = 0; i < sys_.bank_.size(); ++i)
        snapBankEvents_[i] = sys_.bank_.eventCountAt(i);
    snapTimelineDroops_ =
        sys_.timeline_ ? sys_.timeline_->totalDroops() : 0;
    for (std::size_t i = 0; i < sys_.cores_.size(); ++i)
        snapCounters_[i] = sys_.cores_[i]->counters();
}

void
PhaseSampler::abortWindow()
{
    winBlocks_ = 0;
}

void
PhaseSampler::accumulateBlock(const double *dev, std::size_t n)
{
    double sum = 0.0;
    double mn = winDevMin_;
    double mx = winDevMax_;
    for (std::size_t j = 0; j < n; ++j) {
        const double d = dev[j];
        sum += d;
        mn = d < mn ? d : mn;
        mx = d > mx ? d : mx;
    }
    winDevSum_ += sum;
    winDevMin_ = mn;
    winDevMax_ = mx;
    winHist_.addBlock(dev, n);
}

PhaseSampler::WindowStats
PhaseSampler::closeWindow()
{
    WindowStats w;
    w.devMean = winDevSum_ / static_cast<double>(windowCycles_);
    w.devMin = winDevMin_;
    w.devMax = winDevMax_;
    w.bankDelta.resize(sys_.bank_.size());
    for (std::size_t i = 0; i < sys_.bank_.size(); ++i)
        w.bankDelta[i] = sys_.bank_.eventCountAt(i) - snapBankEvents_[i];
    w.timelineDroops = sys_.timeline_
        ? sys_.timeline_->totalDroops() - snapTimelineDroops_
        : 0;
    const std::size_t nCores = sys_.cores_.size();
    w.coreDelta.resize(nCores);
    w.coreInstr.resize(nCores);
    w.coreStall.resize(nCores);
    for (std::size_t i = 0; i < nCores; ++i) {
        const cpu::PerfCounters &now = sys_.cores_[i]->counters();
        const cpu::PerfCounters &then = snapCounters_[i];
        cpu::SkipCounters &d = w.coreDelta[i];
        d.instructions = now.instructions() - then.instructions();
        std::uint64_t stallTotal = 0;
        for (std::size_t c = 0; c < cpu::PerfCounters::kNumCauses; ++c) {
            const auto cause = static_cast<cpu::StallCause>(c);
            d.stallCycles[c] =
                now.stallCycles(cause) - then.stallCycles(cause);
            d.events[c] = now.eventCount(cause) - then.eventCount(cause);
            stallTotal += d.stallCycles[c];
        }
        w.coreInstr[i] = d.instructions;
        w.coreStall[i] = stallTotal;
    }
    return w;
}

bool
PhaseSampler::similarToRef(const WindowStats &w) const
{
    const double width = ref_.devMax - ref_.devMin;
    if (std::abs(w.devMean - ref_.devMean) >
        kMeanTolFrac * width + kMeanTolAbs)
        return false;
    const double envTol = kEnvTolFrac * width + kEnvTolAbs;
    if (w.devMin < ref_.devMin - envTol ||
        w.devMax > ref_.devMax + envTol)
        return false;
    for (std::size_t i = 0; i < w.coreInstr.size(); ++i) {
        const auto refInstr = static_cast<double>(ref_.coreInstr[i]);
        const auto dInstr = std::abs(
            static_cast<double>(w.coreInstr[i]) - refInstr);
        if (dInstr > kInstrTolFrac * refInstr + kInstrTolAbs)
            return false;
        const auto refStall = static_cast<double>(ref_.coreStall[i]);
        const auto dStall = std::abs(
            static_cast<double>(w.coreStall[i]) - refStall);
        if (dStall > kStallTolFrac * refStall + kStallTolAbs)
            return false;
    }
    return true;
}

void
PhaseSampler::resetPhase(const WindowStats &w)
{
    ref_ = w;
    refHist_ = winHist_;
    hasRef_ = true;
    consecutive_ = 0;
    skipWindows_ =
        std::min<Cycles>(kInitialSkipWindows, cfg_.maxSkipWindows);
    phaseDevMin_ = w.devMin;
    phaseDevMax_ = w.devMax;
    phaseMinHi_ = w.devMin;
    phaseMaxLo_ = w.devMax;
    phaseKsMax_ = 0.0;
    phaseBankMin_ = w.bankDelta;
    phaseBankMax_ = w.bankDelta;
    phaseTlMin_ = w.timelineDroops;
    phaseTlMax_ = w.timelineDroops;
    phaseInstrMin_ = w.coreInstr;
    phaseInstrMax_ = w.coreInstr;
    phaseStallMin_ = w.coreStall;
    phaseStallMax_ = w.coreStall;
}

void
PhaseSampler::extendPhase(const WindowStats &w)
{
    phaseDevMin_ = std::min(phaseDevMin_, w.devMin);
    phaseDevMax_ = std::max(phaseDevMax_, w.devMax);
    phaseMinHi_ = std::max(phaseMinHi_, w.devMin);
    phaseMaxLo_ = std::min(phaseMaxLo_, w.devMax);
    phaseKsMax_ =
        std::max(phaseKsMax_, ksDistance(winHist_, refHist_));
    for (std::size_t i = 0; i < w.bankDelta.size(); ++i) {
        phaseBankMin_[i] = std::min(phaseBankMin_[i], w.bankDelta[i]);
        phaseBankMax_[i] = std::max(phaseBankMax_[i], w.bankDelta[i]);
    }
    phaseTlMin_ = std::min(phaseTlMin_, w.timelineDroops);
    phaseTlMax_ = std::max(phaseTlMax_, w.timelineDroops);
    for (std::size_t i = 0; i < w.coreInstr.size(); ++i) {
        phaseInstrMin_[i] = std::min(phaseInstrMin_[i], w.coreInstr[i]);
        phaseInstrMax_[i] = std::max(phaseInstrMax_[i], w.coreInstr[i]);
        phaseStallMin_[i] = std::min(phaseStallMin_[i], w.coreStall[i]);
        phaseStallMax_[i] = std::max(phaseStallMax_[i], w.coreStall[i]);
    }
}

bool
PhaseSampler::classify(const WindowStats &w)
{
    if (!hasRef_ || !similarToRef(w)) {
        // First window ever, or a phase change: this window becomes
        // the new reference and stability restarts from scratch.
        resetPhase(w);
        return false;
    }
    extendPhase(w);
    ++consecutive_;
    return consecutive_ >= cfg_.stableWindows;
}

bool
PhaseSampler::nearGuardBand(double deviation) const
{
    const double g = cfg_.guardBand;
    for (std::size_t i = 0; i < sys_.bank_.size(); ++i) {
        const noise::DroopDetector &d = sys_.bank_.detector(i);
        if (std::abs(deviation + d.margin()) < g ||
            std::abs(deviation - d.releaseLevel()) < g)
            return true;
    }
    if (sys_.timeline_ &&
        std::abs(deviation + sys_.timeline_->margin()) < g)
        return true;
    return false;
}

Cycles
PhaseSampler::planSkip(Cycles remaining) const
{
    Cycles cap = remaining;
    // Never jump an OS-tick injection: the countdown is the number of
    // ticks before the next injection cycle, which must be simulated.
    for (const Cycles cd : sys_.osTickCountdown_)
        cap = std::min(cap, cd);
    // Never jump a per-core behavioral boundary (phase change,
    // workload completion). A core that does not support skipping
    // reports 0 and disables fast-forward entirely.
    for (const auto &core : sys_.cores_)
        cap = std::min(cap, core->skippableCycles());
    const Cycles m = std::min<Cycles>(skipWindows_, cap / windowCycles_);
    if (m == 0)
        return 0;
    // Guard band: with the boundary sample close to an armed
    // threshold or release level, the detectors' hysteresis state
    // after the skipped stretch would be ambiguous — postpone and
    // keep simulating until the state is clear-cut.
    if (nearGuardBand(sys_.deviation()))
        return 0;
    return m * windowCycles_;
}

void
PhaseSampler::applySkip(const WindowStats &w, Cycles skipCycles)
{
    const Cycles m = skipCycles / windowCycles_;

    // Sinks: m exact integer replays of the representative window.
    // The histogram gains exactly m * windowCycles_ of mass (mass
    // conservation is bit-exact); the detectors gain m times the
    // window's event starts with hysteresis state untouched; the
    // timeline advances with proportionally allocated droops; each
    // core advances its clock exactly and its work counters by the
    // scaled window deltas. PDN state and core RNG streams stay put —
    // the resumed stretch is a valid sample of the stationary state.
    sys_.scope_.recordExtrapolated(winHist_, m);
    for (std::size_t i = 0; i < sys_.bank_.size(); ++i)
        sys_.bank_.addExtrapolatedEvents(i, w.bankDelta[i] * m);
    if (sys_.timeline_)
        sys_.timeline_->feedExtrapolated(skipCycles, w.timelineDroops * m);
    for (std::size_t i = 0; i < sys_.cores_.size(); ++i) {
        cpu::SkipCounters scaled = w.coreDelta[i];
        scaled.instructions *= m;
        for (std::size_t c = 0; c < cpu::PerfCounters::kNumCauses; ++c) {
            scaled.stallCycles[c] *= m;
            scaled.events[c] *= m;
        }
        sys_.cores_[i]->skipAhead(skipCycles, scaled);
    }
    for (Cycles &cd : sys_.osTickCountdown_)
        cd -= skipCycles;
    sys_.cycles_ += skipCycles;

    // Bound accounting: each replayed window can drift from the truth
    // by at most the phase's observed window-to-window spread plus
    // slack proportional to the window total (the spread estimate
    // itself comes from a handful of windows).
    const auto md = static_cast<double>(m);
    double evSpread = 0.0;
    for (std::size_t i = 0; i < phaseBankMax_.size(); ++i) {
        evSpread = std::max(
            evSpread,
            static_cast<double>(phaseBankMax_[i] - phaseBankMin_[i]));
    }
    const auto evMax = static_cast<double>(maxOf(phaseBankMax_));
    evBound_ += md * (evSpread + kEvSlackFrac * evMax + kEvSlackAbs);

    double instrSpread = 0.0;
    for (std::size_t i = 0; i < phaseInstrMax_.size(); ++i) {
        instrSpread = std::max(
            instrSpread,
            static_cast<double>(phaseInstrMax_[i] - phaseInstrMin_[i]));
    }
    const auto instrMax = static_cast<double>(maxOf(phaseInstrMax_));
    instrBound_ +=
        md * (instrSpread + kInstrSlackFrac * instrMax + kInstrSlackAbs);

    double stallSpread = 0.0;
    for (std::size_t i = 0; i < phaseStallMax_.size(); ++i) {
        stallSpread = std::max(
            stallSpread,
            static_cast<double>(phaseStallMax_[i] - phaseStallMin_[i]));
    }
    const auto stallMax = static_cast<double>(maxOf(phaseStallMax_));
    stallBound_ +=
        md * (stallSpread + kStallSlackFrac * stallMax + kStallSlackAbs);

    droopSpreadMax_ =
        std::max(droopSpreadMax_, phaseMinHi_ - phaseDevMin_);
    overshootSpreadMax_ =
        std::max(overshootSpreadMax_, phaseDevMax_ - phaseMaxLo_);
    ksSkipMax_ = std::max(ksSkipMax_, phaseKsMax_);
    if (sys_.timeline_) {
        const double spreadRate =
            static_cast<double>(phaseTlMax_ - phaseTlMin_) * 1000.0 /
            static_cast<double>(windowCycles_);
        tlSpreadMax_ = std::max(tlSpreadMax_, spreadRate);
    }

    extrapolated_ += skipCycles;
    ++skips_;
    skipWindows_ =
        std::min<Cycles>(skipWindows_ * 2, cfg_.maxSkipWindows);
}

void
PhaseSampler::run(Cycles n)
{
    // Windows must be contiguous full blocks; a fresh run() call may
    // follow arbitrary external stepping, so restart accumulation.
    abortWindow();
    Cycles remaining = n;
    while (remaining > 0) {
        const Cycles blk = sys_.blockLimit(remaining);
        if (blk < System::kBlockCycles) {
            // OS-tick injection due (blk == 0), an injection landing
            // inside the next full block, or end-of-run truncation:
            // execute exactly and restart the window.
            abortWindow();
            if (blk == 0) {
                sys_.tick();
                simulated_ += 1;
                --remaining;
            } else {
                sys_.tickBlock(blk);
                simulated_ += blk;
                remaining -= blk;
            }
            continue;
        }
        if (winBlocks_ == 0)
            beginWindow();
        sys_.tickBlock(blk);
        simulated_ += blk;
        remaining -= blk;
        accumulateBlock(sys_.blockDeviation_.data(),
                        static_cast<std::size_t>(blk));
        if (++winBlocks_ < cfg_.windowBlocks)
            continue;
        const WindowStats w = closeWindow();
        winBlocks_ = 0;
        if (!classify(w))
            continue;
        const Cycles skip = planSkip(remaining);
        if (skip > 0) {
            applySkip(w, skip);
            remaining -= skip;
        }
    }
}

SamplingReport
PhaseSampler::report() const
{
    SamplingReport r;
    r.active = true;
    r.simulatedCycles = simulated_;
    r.extrapolatedCycles = extrapolated_;
    r.skips = skips_;
    if (extrapolated_ == 0)
        return r; // bit-exact run: all bounds stay 0
    const Cycles total = simulated_ + extrapolated_;
    const double extFrac = static_cast<double>(extrapolated_) /
        static_cast<double>(total);
    // Realization slack: after the first skip the exact and sampled
    // runs consume their stochastic streams differently, so even the
    // simulated stretches differ as independent realizations — a
    // CLT-scale sqrt(total) term per counting metric, and a
    // heavy-tail term for the extremes when OS-tick restart surges
    // (exponential-tail magnitudes) are in play.
    std::uint64_t evTotalMax = 0;
    for (std::size_t i = 0; i < sys_.bank_.size(); ++i)
        evTotalMax = std::max(evTotalMax, sys_.bank_.eventCountAt(i));
    std::uint64_t instrTotalMax = 0;
    std::uint64_t stallTotalMax = 0;
    for (const auto &core : sys_.cores_) {
        const cpu::PerfCounters &c = core->counters();
        instrTotalMax = std::max(instrTotalMax, c.instructions());
        stallTotalMax = std::max(stallTotalMax, c.totalStallCycles());
    }
    const bool ticks = !sys_.osTickCountdown_.empty();

    r.eventCountBound = evBound_ + kEvFloor +
        kEvRealiz * std::sqrt(static_cast<double>(evTotalMax) + 1.0);
    r.coreInstructionBound = instrBound_ + kInstrFloor +
        kInstrRealiz *
            std::sqrt(static_cast<double>(instrTotalMax) + 1.0);
    r.coreStallCycleBound = stallBound_ + kStallFloor +
        kStallRealiz *
            std::sqrt(static_cast<double>(stallTotalMax) + 1.0);
    r.maxDroopBound = kExtremeFrac * droopSpreadMax_ + cfg_.guardBand +
        kExtremeAbs + (ticks ? kTickTailSlack : 0.0);
    r.maxOvershootBound = kExtremeFrac * overshootSpreadMax_ +
        cfg_.guardBand + kExtremeAbs + (ticks ? kTickTailSlack : 0.0);
    r.deepestEventBound = r.maxDroopBound;
    if (sys_.timeline_) {
        const auto interval =
            static_cast<double>(sys_.cfg_.timelineInterval);
        r.timelineElementBound = std::min(
            1000.0, kTlFrac * tlSpreadMax_ + kTlFloorAbs +
                kTlFloorScale / std::sqrt(interval));
    }
    r.histFractionBound = extFrac * (ksSkipMax_ + kKsEstSlack) +
        kFracFloor + kFracRealiz / std::sqrt(static_cast<double>(total));
    return r;
}

} // namespace vsmooth::sim
