#include "lane_group.hh"

#include <algorithm>
#include <cstdint>

#include "common/logging.hh"
#include "common/simd.hh"

namespace vsmooth::sim {

namespace {

/**
 * 64-byte-aligned view over a grow-only backing vector: keep 7 spare
 * doubles and round the base address up to the next cache line. The
 * backing store only ever grows (and the warm steady state never
 * resizes), so this preserves the zero-allocation drain guarantee the
 * alloc audit enforces while letting every lane column start on a
 * 64-byte boundary.
 */
double *
alignedGrow(std::vector<double> &raw, std::size_t n)
{
    if (raw.size() < n + 7)
        raw.resize(n + 7);
    const auto addr = reinterpret_cast<std::uintptr_t>(raw.data());
    return reinterpret_cast<double *>((addr + 63) &
                                      ~std::uintptr_t{63});
}

} // namespace

LaneGroup::LaneGroup(std::size_t width)
    : width_(width == 0 ? simd::defaultLaneWidth() : width)
{
    if (width_ > simd::kMaxLanes)
        fatal("LaneGroup: width %zu exceeds the maximum of %zu", width_,
              simd::kMaxLanes);
}

void
LaneGroup::runSolo(LanePlan &plan)
{
    System &sys = *plan.system;
    if (plan.untilFinished) {
        plan.executed = sys.runUntilFinished(plan.cycles);
        if (plan.padTo > sys.cycles())
            sys.run(plan.padTo - sys.cycles());
    } else {
        sys.run(plan.cycles);
    }
}

bool
LaneGroup::finishUntil(Lane &lane)
{
    lane.plan->executed = lane.executed;
    lane.untilFinished = false;
    const Cycles at = lane.sys->cycles();
    if (lane.plan->padTo > at) {
        lane.remaining = lane.plan->padTo - at;
        return false;
    }
    return true;
}

void
LaneGroup::run(std::vector<LanePlan> &plans)
{
    std::vector<Lane> &lanes = lanes_;
    lanes.clear();
    lanes.reserve(width_);
    std::size_t next = 0;

    // Per-round grouping of fusable lanes by core count (the kernel
    // shares one core loop across all lanes of a call).
    Lane *groups[simd::kMaxLaneCores + 1][simd::kMaxLanes];
    Cycles groupBlk[simd::kMaxLaneCores + 1];
    std::size_t groupSize[simd::kMaxLaneCores + 1];

    while (true) {
        while (lanes.size() < width_ && next < plans.size()) {
            LanePlan &plan = plans[next++];
            System &sys = *plan.system;
            // Plans the fused kernel cannot express take the existing
            // standalone paths unchanged: per-cycle feedback consumers
            // (blockEligible_ is false), systems wider than the kernel's
            // core arrays, the degenerate one-lane group, and sampled
            // runs (the lockstep kernel drives tickBlock directly and
            // would silently bypass the PhaseSampler; run() engages it).
            if (!sys.blockEligible_ || width_ == 1 ||
                sys.cores_.size() > simd::kMaxLaneCores ||
                sys.samplingWanted()) {
                runSolo(plan);
                continue;
            }
            Lane lane;
            lane.plan = &plan;
            lane.sys = &sys;
            if (plan.untilFinished) {
                lane.untilFinished = true;
                lane.maxCycles = plan.cycles;
            } else {
                lane.remaining = plan.cycles;
            }
            lanes.push_back(lane);
        }
        if (lanes.empty())
            break;

        // Retirement scan. The order mirrors the standalone loops:
        // runUntilFinished checks its budget before scanning cores,
        // scans at every block boundary (finished() is const, so
        // scanning more often than the solo done-cache is harmless),
        // and hands off to the padding run; run(n) stops at zero
        // remaining without ever touching an un-started System.
        bool retired = false;
        for (auto it = lanes.begin(); it != lanes.end();) {
            Lane &lane = *it;
            bool done = false;
            if (lane.untilFinished) {
                if (lane.executed >= lane.maxCycles) {
                    done = finishUntil(lane);
                } else {
                    const std::size_t nCores = lane.sys->cores_.size();
                    bool allFinished = true;
                    for (std::size_t i = 0; i < nCores; ++i) {
                        if (!lane.sys->cores_[i]->finished()) {
                            allFinished = false;
                            break;
                        }
                    }
                    if (allFinished)
                        done = finishUntil(lane);
                }
            }
            if (!lane.untilFinished && !done && lane.remaining == 0)
                done = true;
            if (done) {
                it = lanes.erase(it);
                retired = true;
            } else {
                ++it;
            }
        }
        if (retired)
            continue; // repack: refill the freed lanes before stepping

        // Per-lane step requests. A lane whose next cycle needs the
        // per-cycle path (an OS-tick injection is due, or a core's
        // finish distance is unknown) takes one scalar tick; the rest
        // group by core count for the fused kernel.
        std::fill(groupSize, groupSize + simd::kMaxLaneCores + 1,
                  std::size_t{0});
        for (Lane &lane : lanes) {
            System &sys = *lane.sys;
            sys.start();
            Cycles want;
            if (lane.untilFinished) {
                Cycles bound = 0;
                for (const auto &core : sys.cores_) {
                    bound = std::max(bound,
                                     core->minTicksUntilFinished());
                }
                if (bound == 0) {
                    sys.tick();
                    ++lane.executed;
                    continue;
                }
                want = std::min(bound, lane.maxCycles - lane.executed);
            } else {
                want = lane.remaining;
            }
            const Cycles blk = sys.blockLimit(want);
            if (blk == 0) {
                sys.tick();
                if (lane.untilFinished)
                    ++lane.executed;
                else
                    --lane.remaining;
                continue;
            }
            const std::size_t nc = sys.cores_.size();
            if (groupSize[nc] == 0)
                groupBlk[nc] = blk;
            else
                groupBlk[nc] = std::min(groupBlk[nc], blk);
            groups[nc][groupSize[nc]++] = &lane;
        }

        for (std::size_t nc = 1; nc <= simd::kMaxLaneCores; ++nc) {
            const std::size_t count = groupSize[nc];
            if (count == 0)
                continue;
            const Cycles n = groupBlk[nc];
            if (count == 1) {
                groups[nc][0]->sys->tickBlock(n);
            } else {
                stepFused(groups[nc], count, n);
            }
            for (std::size_t g = 0; g < count; ++g) {
                Lane &lane = *groups[nc][g];
                if (lane.untilFinished)
                    lane.executed += n;
                else
                    lane.remaining -= n;
            }
        }
    }
}

void
LaneGroup::stepFused(Lane *const *lanes, std::size_t count, Cycles n)
{
    const auto nn = static_cast<std::size_t>(n);
    const std::size_t nCores = lanes[0]->sys->cores_.size();
    const std::size_t vecW = simd::vectorWidth(simd::activeLevel());
    const std::size_t stride = ((count + vecW - 1) / vecW) * vecW;
    // Columns are padded to a whole number of cache lines so every
    // column starts 64-byte aligned (the AVX-512 transpose loads then
    // never split a cache line); the pad tail is never read or
    // written.
    const std::size_t colElems = (nn + 7) & ~std::size_t{7};

    double *const steadyBase =
        alignedGrow(steadyL_, nCores * stride * colElems);
    double *const totalBase = alignedGrow(totalL_, stride * colElems);
    double *const devBase = alignedGrow(devL_, stride * colElems);

    simd::LaneStepArgs args;
    args.n = nn;
    args.lanes = count;
    args.stride = stride;
    args.cores = nCores;
    // Every stream the kernel gathers from or scatters to is a
    // per-lane contiguous column; pad lanes beyond `count` point at
    // their own columns, which hold stale finite values (resize
    // zero-initializes, and every write is a finite double). Their
    // parameters below are benign (zero coefficients, unit ripple
    // period), every kernel operation is elementwise, and their
    // outputs are never read back.
    for (std::size_t l = 0; l < stride; ++l) {
        for (std::size_t c = 0; c < nCores; ++c)
            args.steady[c][l] =
                steadyBase + (c * stride + l) * colElems;
        args.total[l] = totalBase + l * colElems;
        args.deviation[l] = devBase + l * colElems;
    }

    // Gather: each lane's cores write their activity block straight
    // into that lane's steady column, and the elementwise steady
    // conversion runs in place (same calls the solo block path makes)
    // — no transposed copy is ever built.
    for (std::size_t l = 0; l < count; ++l) {
        System &sys = *lanes[l]->sys;
        for (std::size_t c = 0; c < nCores; ++c) {
            double *const col =
                steadyBase + (c * stride + l) * colElems;
            sys.cores_[c]->tickBlock(col, nn);
            sys.currents_[c].steadyBlock(col, col, nn);
        }
        const auto cur0 = sys.currents_[0].cursor();
        args.tau[l] = cur0.tau;
        args.alpha[l] = cur0.alpha;
        args.slew[l] = cur0.slew;
        for (std::size_t c = 0; c < nCores; ++c)
            args.prev[c][l] = sys.currents_[c].cursor().prev;
        const auto bs = sys.pdn_.cursor();
        args.m00[l] = bs.m00;
        args.m01[l] = bs.m01;
        args.m10[l] = bs.m10;
        args.m11[l] = bs.m11;
        args.n00[l] = bs.n00;
        args.n01[l] = bs.n01;
        args.n10[l] = bs.n10;
        args.n11[l] = bs.n11;
        args.vdd[l] = bs.vdd;
        args.invVdd[l] = bs.invVdd;
        args.rcDamp[l] = bs.rc;
        args.dtStep[l] = bs.dt;
        args.rippleAmp[l] = bs.rippleAmp;
        args.ripplePeriod[l] = sys.pdn_.ripplePeriod();
        args.iL[l] = bs.iL;
        args.vC[l] = bs.vC;
        args.vDie[l] = bs.vDie;
        args.tTime[l] = bs.t;
    }
    for (std::size_t l = count; l < stride; ++l)
        args.ripplePeriod[l] = 1.0; // avoid 0/0 in the pad division

    const simd::LaneStepFn step = simd::kernels().laneStep;
    if (!step)
        panic("LaneGroup: no laneStep kernel at the active SIMD level");
    step(args);

    // Scatter: write back carried state and feed each lane's sinks
    // directly from its contiguous deviation (and, when tracing,
    // current) column — the same recordBlock/feedBlock calls, over the
    // same values, that lane's solo tickBlock would make.
    for (std::size_t l = 0; l < count; ++l) {
        System &sys = *lanes[l]->sys;
        for (std::size_t c = 0; c < nCores; ++c) {
            auto cur = sys.currents_[c].cursor();
            cur.prev = args.prev[c][l];
            sys.currents_[c].commit(cur);
        }
        auto bs = sys.pdn_.cursor();
        bs.iL = args.iL[l];
        bs.vC = args.vC[l];
        bs.vDie = args.vDie[l];
        bs.t = args.tTime[l];
        sys.pdn_.commit(bs);

        const double *const dev = args.deviation[l];
        sys.lastCurrent_ = args.total[l][nn - 1];

        sys.scope_.recordBlock(dev, nn);
        sys.bank_.feedBlock(dev, nn);
        if (sys.timeline_)
            sys.timeline_->feedBlock(dev, nn);
        if (sys.trace_)
            sys.trace_->recordBlock(sys.cycles_, dev, args.total[l],
                                    nn);

        for (Cycles &cd : sys.osTickCountdown_)
            cd -= n;
        sys.cycles_ += n;
    }
}

} // namespace vsmooth::sim
