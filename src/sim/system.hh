/**
 * @file
 * The top-level simulated system: N cores, their current models, the
 * shared PDN, and the measurement instrumentation (scope, droop
 * detector bank, timeline) — the software twin of the paper's probed
 * Core 2 Duo platform.
 *
 * Every cycle:
 *   1. each core advances and reports its activity,
 *   2. the current models convert activity to amps,
 *   3. the summed current steps the PDN and yields the die voltage,
 *   4. the instrumentation records the voltage deviation,
 *   5. if an operating margin and recovery cost are configured, a
 *      violation triggers a *chip-wide* rollback stall on all cores
 *      (a shared supply means a global recovery — Sec III-C).
 */

#ifndef VSMOOTH_SIM_SYSTEM_HH
#define VSMOOTH_SIM_SYSTEM_HH

#include <array>
#include <memory>
#include <optional>
#include <vector>

#include "cpu/core_model.hh"
#include "noise/droop_detector.hh"
#include "resilience/emergency_predictor.hh"
#include "resilience/margin_controller.hh"
#include "resilience/resonance_damper.hh"
#include "noise/scope.hh"
#include "noise/timeline.hh"
#include "noise/trace_writer.hh"
#include "pdn/package_config.hh"
#include "pdn/second_order.hh"
#include "power/current_model.hh"
#include "sim/calibration.hh"
#include "sim/sampler.hh"

namespace vsmooth::sim {

/** Configuration of a System. */
struct SystemConfig
{
    pdn::PackageConfig package = pdn::PackageConfig::core2duo();
    Hertz clockFrequency{kClockHz};
    power::CurrentModelParams coreCurrent{};

    /**
     * Split per-core supplies instead of one connected rail. The
     * paper's footnote 3 (and James et al., ISSCC 2007 [1]) reports
     * that split supplies see *larger* swings: each rail gets only
     * its share of the decap and loses the cross-core averaging of a
     * shared rail. Modeled by giving each core its own tank with
     * 1/numCores of the capacitance.
     */
    bool splitSupplies = false;

    /** Margins watched by the detector bank (default: full sweep). */
    std::vector<double> watchMargins;

    /**
     * Online resiliency: when emergencyMargin > 0, a droop past it
     * triggers a recovery of recoveryCostCycles on every core.
     */
    double emergencyMargin = 0.0;
    std::uint32_t recoveryCostCycles = 0;

    /**
     * Hardware noise-mitigation baselines (the schemes the paper's
     * software scheduler is positioned against). When enabled, a
     * throttle request scales every core's activity for that cycle,
     * smoothing the current transient.
     */
    bool enableEmergencyPredictor = false;
    resilience::EmergencyPredictorParams predictorParams{};
    bool enableResonanceDamper = false;
    resilience::ResonanceDamperParams damperParams{};
    /** Activity multiplier applied while a mitigation throttles. */
    double throttleFactor = 0.6;

    /**
     * Closed-loop adaptive margin: a PI controller reads the simulated
     * ring-oscillator slack at the OS-tick cadence and trims the
     * operating margin toward the thinnest level the observed noise
     * supports; a droop violating the *current* margin triggers the
     * same chip-wide recovery as the fixed-margin engine and widens
     * the margin. Mutually exclusive with emergencyMargin (one margin
     * authority per chip) and requires recoveryCostCycles > 0. A
     * marginControllerParams.updateInterval of 0 resolves to
     * osTickInterval.
     */
    bool enableMarginController = false;
    resilience::MarginControllerParams marginControllerParams{};

    /**
     * OS timer-tick interval in cycles (0 disables). Every interval,
     * all cores take a synchronized platform interrupt — the source
     * of rare chip-wide deep droops. Defaults to the real 1 kHz tick
     * at 1.86 GHz; time-compressed population studies shorten it so
     * a scaled-down run sees a representative number of ticks
     * (kCompressedOsTick).
     */
    Cycles osTickInterval = 1'860'000;

    /** Optional waveform trace (ring buffer of recent cycles). */
    bool enableTrace = false;
    std::size_t traceCapacity = 65536;

    /** Optional droop-rate timeline (Fig 14-style series). */
    bool enableTimeline = false;
    Cycles timelineInterval = 100'000;
    double timelineMargin = kIdleMargin;

    /**
     * Batched block-wise execution of run()/runUntilFinished() when
     * no per-cycle feedback consumer is active (see DESIGN.md
     * "Batched execution"). Results are bit-identical either way;
     * this switch (and the VSMOOTH_SCALAR_TICK environment variable)
     * exists so the differential tests and golden cross-checks can
     * force the cycle-at-a-time path.
     */
    bool enableBlockedExecution = true;

    /**
     * Sampled execution of run(): fast-forward stationary stretches
     * by extrapolating the sinks with explicit error bounds (see
     * DESIGN.md "Sampled execution"). Off (the Env default with no
     * VSMOOTH_SAMPLING set) is bit-identical to exact execution;
     * Auto engages only when the System is eligible (blocked
     * pipeline active, no trace) and never inside runUntilFinished().
     */
    SamplingConfig sampling;
};

/** Multi-core system simulation. */
class System
{
  public:
    /**
     * Cycles per batched fast-path block: long enough to amortize
     * virtual dispatch and cross-component call overhead, short
     * enough that the scratch buffers stay cache-resident.
     */
    static constexpr Cycles kBlockCycles = 256;

    explicit System(const SystemConfig &cfg);

    /**
     * Attach a core. All cores must be added before the first tick.
     * @return the core's index
     */
    std::size_t addCore(std::unique_ptr<cpu::CoreModel> core);

    /** Advance the whole system one clock cycle. */
    void tick();

    /** Advance n cycles. */
    void run(Cycles n);

    /**
     * Run until every core's workload finishes or maxCycles elapse.
     * @return cycles executed
     */
    Cycles runUntilFinished(Cycles maxCycles);

    std::size_t numCores() const { return cores_.size(); }
    cpu::CoreModel &core(std::size_t i) { return *cores_.at(i); }
    const cpu::CoreModel &core(std::size_t i) const
    { return *cores_.at(i); }

    Cycles cycles() const { return cycles_; }
    /** Die voltage after the last tick. */
    double dieVoltage() const { return pdn_.voltage(); }
    /** Signed deviation of die voltage from nominal. */
    double deviation() const { return pdn_.voltageDeviation(); }
    /** Total chip current of the last tick. */
    double totalCurrent() const { return lastCurrent_; }

    const noise::Scope &scope() const { return scope_; }
    const noise::DroopDetectorBank &droopBank() const { return bank_; }
    /** Timeline series (only if enabled; finishes the last interval). */
    const std::vector<double> &timelineSeries();

    /** Waveform trace (only if enabled; fatal otherwise). */
    const noise::TraceWriter &trace() const;
    noise::TraceWriter &trace();

    /** Emergencies triggered at the configured operating margin. */
    std::uint64_t emergencies() const { return emergencies_; }

    /** The signature predictor, if enabled (nullptr otherwise). */
    const resilience::EmergencyPredictor *predictor() const
    { return predictor_ ? &*predictor_ : nullptr; }
    /** The resonance damper, if enabled (nullptr otherwise). */
    const resilience::ResonanceDamper *damper() const
    { return damper_ ? &*damper_ : nullptr; }
    /** The adaptive margin controller, if enabled (nullptr otherwise). */
    const resilience::MarginController *marginController() const
    { return marginController_ ? &*marginController_ : nullptr; }

    const SystemConfig &config() const { return cfg_; }

    /**
     * True when run()/runUntilFinished() execute through the batched
     * block pipeline (no per-cycle feedback consumer configured).
     */
    bool blockedExecutionActive() const { return blockEligible_; }

    /**
     * True when run() executes through the sampled-execution engine
     * (resolved sampling mode Auto and the System is eligible).
     * Resolved at the first tick.
     */
    bool samplingActive() const { return sampler_ != nullptr; }

    /**
     * Realized sampling statistics and error bounds; a default
     * (inactive) report when sampling never engaged.
     */
    SamplingReport samplingReport() const
    { return sampler_ ? sampler_->report() : SamplingReport{}; }

  private:
    /** The scenario-lane engine steps K Systems in lockstep through
     *  the same block pipeline and needs the private stages. */
    friend class LaneGroup;
    /** The sampled-execution engine drives the block pipeline and
     *  applies extrapolated sink updates. */
    friend class PhaseSampler;

    /** One-time start-of-simulation initialization (PDN settling,
     *  per-rail construction, OS-tick countdowns, block buffers). */
    void start();

    /** True when start() will engage the sampled-execution engine:
     *  the resolved sampling mode is Auto and the System is eligible
     *  (blocked pipeline, no trace). Valid before start() — all the
     *  inputs are fixed at construction — so LaneGroup can route
     *  sampling runs through the solo path, where run() samples. */
    bool samplingWanted() const;

    /**
     * Run one batched block of n cycles (n >= 1, started_, no OS-tick
     * injection due inside the block): core tickBlock -> current
     * conversion -> PDN stepBlock -> block-fed instrumentation.
     * Bit-identical to n tick() calls under the fast-path eligibility
     * conditions.
     */
    void tickBlock(Cycles n);

    /**
     * Largest admissible fast block not exceeding `want`: capped by
     * kBlockCycles and by the nearest pending OS-tick injection.
     * 0 means the next cycle must go through per-cycle tick().
     */
    Cycles blockLimit(Cycles want) const;

    SystemConfig cfg_;
    pdn::SecondOrderPdn pdn_;
    /** Per-core rails when splitSupplies is set (built lazily at the
     *  first tick, once the core count is known). */
    std::vector<pdn::SecondOrderPdn> rails_;
    std::vector<std::unique_ptr<cpu::CoreModel>> cores_;
    std::vector<power::CurrentModel> currents_;
    noise::Scope scope_;
    noise::DroopDetectorBank bank_;
    std::optional<noise::DroopDetector> emergencyDetector_;
    std::optional<noise::NoiseTimeline> timeline_;
    std::optional<noise::TraceWriter> trace_;
    std::optional<resilience::EmergencyPredictor> predictor_;
    std::optional<resilience::ResonanceDamper> damper_;
    std::optional<resilience::MarginController> marginController_;
    /** Last-seen per-core event counts (for predictor event feed). */
    std::vector<std::array<std::uint64_t, cpu::PerfCounters::kNumCauses>>
        lastEventCounts_;
    std::uint64_t emergencies_ = 0;
    Cycles cycles_ = 0;
    std::vector<double> coreCurrents_;
    double lastCurrent_ = 0.0;
    bool started_ = false;
    /** Fast-path eligibility, fixed at construction. */
    bool blockEligible_ = false;
    /** Per-core ticks until the next OS-tick injection (0 = the next
     *  tick injects); empty when osTickInterval is 0. */
    std::vector<Cycles> osTickCountdown_;
    /** Block-pipeline scratch (kBlockCycles each, allocated once). */
    std::vector<double> blockActivity_;
    std::vector<double> blockTotal_;
    std::vector<double> blockDeviation_;
    /** Sampled-execution engine (only when the resolved sampling
     *  mode is Auto and the System is eligible). */
    std::unique_ptr<PhaseSampler> sampler_;
};

} // namespace vsmooth::sim

#endif // VSMOOTH_SIM_SYSTEM_HH
