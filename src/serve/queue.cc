#include "queue.hh"

#include <utility>
#include <vector>

namespace vsmooth::serve {

TaskQueue::Push
TaskQueue::push(Task task)
{
    std::lock_guard lk(m_);
    if (draining_)
        return Push::Draining;
    if (tasks_.size() >= capacity_)
        return Push::Busy;
    tasks_.push_back(std::move(task));
    cv_.notify_one();
    return Push::Accepted;
}

bool
TaskQueue::pop(Task *out)
{
    std::unique_lock lk(m_);
    cv_.wait(lk, [&] { return !tasks_.empty() || draining_; });
    if (tasks_.empty())
        return false; // draining and nothing left
    *out = std::move(tasks_.front());
    tasks_.pop_front();
    ++inFlight_;
    return true;
}

void
TaskQueue::taskDone()
{
    std::lock_guard lk(m_);
    if (--inFlight_ == 0)
        idleCv_.notify_all();
}

void
TaskQueue::beginDrain()
{
    std::vector<Task> rejected;
    {
        std::lock_guard lk(m_);
        draining_ = true;
        // Pull the backlog out under the lock, reject outside it:
        // reject callbacks write to sockets and must not serialize
        // against push/pop.
        while (!tasks_.empty()) {
            rejected.push_back(std::move(tasks_.front()));
            tasks_.pop_front();
        }
        cv_.notify_all();
        if (inFlight_ == 0)
            idleCv_.notify_all();
    }
    for (Task &t : rejected) {
        if (t.reject)
            t.reject();
    }
}

void
TaskQueue::awaitIdle()
{
    std::unique_lock lk(m_);
    idleCv_.wait(lk, [&] {
        return draining_ && tasks_.empty() && inFlight_ == 0;
    });
}

std::size_t
TaskQueue::depth() const
{
    std::lock_guard lk(m_);
    return tasks_.size();
}

bool
TaskQueue::draining() const
{
    std::lock_guard lk(m_);
    return draining_;
}

} // namespace vsmooth::serve
