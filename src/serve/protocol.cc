#include "protocol.hh"

#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace vsmooth::serve {

LineReader::Status
LineReader::next(std::string *line)
{
    bool discarding = false;
    for (;;) {
        const std::size_t nl = buf_.find('\n');
        if (nl != std::string::npos) {
            if (nl > kMaxLineBytes) {
                buf_.erase(0, nl + 1);
                return Status::Oversized;
            }
            line->assign(buf_, 0, nl);
            buf_.erase(0, nl + 1);
            return Status::Line;
        }
        if (buf_.size() > kMaxLineBytes) {
            // Stop accumulating an unbounded frame: drop what we
            // have and discard until its terminating newline, then
            // report one Oversized status for the whole frame.
            buf_.clear();
            discarding = true;
        }
        if (eof_)
            return Status::Eof; // partial trailing frame is dropped
        char chunk[4096];
        const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status::Error;
        }
        if (n == 0) {
            eof_ = true;
            continue;
        }
        if (!discarding) {
            buf_.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        const auto *p = static_cast<const char *>(
            std::memchr(chunk, '\n', static_cast<std::size_t>(n)));
        if (p) {
            // Keep whatever followed the oversized frame's newline.
            buf_.assign(p + 1, static_cast<std::size_t>(
                                   chunk + n - (p + 1)));
            return Status::Oversized;
        }
    }
}

bool
sendLine(int fd, std::string_view payload)
{
    std::string frame(payload);
    frame.push_back('\n');
    std::size_t off = 0;
    while (off < frame.size()) {
        const ssize_t n =
            ::write(fd, frame.data() + off, frame.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

Json
makeError(std::string_view code, std::string_view message,
          bool retryable)
{
    Json j = Json::object();
    j.set("type", "error");
    j.set("code", std::string(code));
    j.set("message", std::string(message));
    j.set("retryable", retryable);
    return j;
}

} // namespace vsmooth::serve
