/**
 * @file
 * Newline-delimited JSON framing for the serve protocol.
 *
 * One request or response per line; the transport is a stream socket
 * (Unix or TCP). Framing failures are survivable by design: an
 * oversized line is consumed to its terminating newline and reported
 * as a status (the server answers with a structured error and keeps
 * the connection); truncated JSON inside a well-framed line is a
 * parse error at the layer above, likewise answered rather than
 * disconnected.
 *
 * Requests:
 *   {"type": "ping"}
 *   {"type": "stats"}
 *   {"type": "batch", "id": "b1", "items": [<batch item>, ...]}
 *   {"type": "shutdown"}
 *
 * Responses (one line each):
 *   {"type": "pong"}
 *   {"type": "stats", ...cache/queue counters...}
 *   {"type": "result", "batch": "b1", "item": "...", "index": i,
 *    "cache": "hit"|"miss", "config_hash": "...", "result": {...}}
 *   {"type": "error", "code": "...", "message": "...",
 *    "retryable": bool, ...context...}
 *   {"type": "batch_done", "batch": "b1", "items": n,
 *    "cache_hits": h, "cache_misses": m, "rejected": r}
 *   {"type": "shutting_down"}
 */

#ifndef VSMOOTH_SERVE_PROTOCOL_HH
#define VSMOOTH_SERVE_PROTOCOL_HH

#include <cstddef>
#include <string>
#include <string_view>

#include "common/json.hh"

namespace vsmooth::serve {

/** Hard per-line cap: a line longer than this is a protocol error
 *  (and a memory bound), not a buffering exercise. */
constexpr std::size_t kMaxLineBytes = 1 << 20;

/** Incremental reader of newline-terminated frames from a stream
 *  socket fd. Not thread-safe; one reader per connection. */
class LineReader
{
  public:
    explicit LineReader(int fd) : fd_(fd) {}

    enum class Status {
        Line,      ///< *line holds one complete frame (no newline)
        Oversized, ///< frame exceeded kMaxLineBytes; it was consumed
        Eof,       ///< peer closed cleanly between frames
        Error,     ///< read(2) failure
    };

    Status next(std::string *line);

  private:
    int fd_;
    std::string buf_;
    bool eof_ = false;
};

/** Write `payload` plus a newline, handling short writes; false on
 *  any write failure (peer gone). */
bool sendLine(int fd, std::string_view payload);

/** Structured error response. */
Json makeError(std::string_view code, std::string_view message,
               bool retryable = false);

} // namespace vsmooth::serve

#endif // VSMOOTH_SERVE_PROTOCOL_HH
