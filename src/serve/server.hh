/**
 * @file
 * The `vsmooth serve` daemon: sweep-as-a-service.
 *
 * A long-running process that listens on a Unix or TCP socket,
 * accepts newline-delimited JSON scenario batches (see protocol.hh),
 * executes each item through the deterministic batch engine
 * (batch.hh) on a bounded executor pool, and streams one Result line
 * per item. Repeat submissions of the same canonical config are
 * answered from the content-addressed cache with the exact bytes of
 * the first computation.
 *
 * Lifecycle: SIGTERM/SIGINT or a `shutdown` request starts a graceful
 * drain — the listener closes, queued items are rejected with a
 * retryable status, in-flight items run to completion and their
 * results are delivered, then the process exits. No partial or
 * corrupt response is ever emitted: a response line is written
 * atomically under the connection's write lock.
 */

#ifndef VSMOOTH_SERVE_SERVER_HH
#define VSMOOTH_SERVE_SERVER_HH

#include <cstddef>
#include <string>

namespace vsmooth::serve {

struct ServeOptions
{
    /** Unix-domain socket path (takes precedence when non-empty). */
    std::string socketPath;
    /** TCP port on 127.0.0.1 (0 = ephemeral, reported via ready
     *  file / log). Used when socketPath is empty. */
    int port = 0;
    /** Executor threads running batch items. */
    std::size_t workers = 2;
    /** Cache byte budget (0 disables caching). */
    std::size_t cacheBytes = std::size_t{64} << 20;
    /** Bounded queue capacity; submissions beyond it get `busy`. */
    std::size_t queueCapacity = 256;
    /** When non-empty, "<kind> <address>" is written here (atomic
     *  rename) once the socket is listening — how scripted tests
     *  learn an ephemeral port. */
    std::string readyFile;
    bool verbose = false;
};

/** Run the daemon until drained. Returns a process exit code. */
int runServe(const ServeOptions &opt);

} // namespace vsmooth::serve

#endif // VSMOOTH_SERVE_SERVER_HH
