#include "batch.hh"

#include <algorithm>

#include "common/parallel.hh"
#include "pdn/package_config.hh"
#include "sched/oracle_matrix.hh"
#include "simtest/properties.hh"
#include "workload/spec_suite.hh"

namespace vsmooth::serve {

namespace {

constexpr std::uint64_t kMaxPopulation = 4096;
constexpr std::uint64_t kMaxOracleCycles = 2'000'000;

/** Odd 64-bit stride for index-derived seeds: run i of a population
 *  always draws seed cfg.seed + i * kSeedStride, so any sharding of
 *  the index range reproduces the same per-run streams. */
constexpr std::uint64_t kSeedStride = 0x9E3779B97F4A7C15ull;

bool
knownBenchmark(const std::string &name)
{
    for (const auto &b : workload::specCpu2006())
        if (name == b.name)
            return true;
    return false;
}

Json
propertiesJson(const std::vector<std::string> &names)
{
    Json arr = Json::array();
    for (const auto &n : names)
        arr.push(Json(n));
    return arr;
}

/** Reduce one run's observables into `r` (the summary kind). */
void
summaryMetrics(const simtest::RunSummary &s, Result &r)
{
    r.metricCount("cycles", s.cycles);
    r.metric("die_voltage", s.dieVoltage);
    r.metric("deviation", s.deviation);
    r.metric("total_current", s.totalCurrent);
    r.metricCount("emergencies", s.emergencies);
    r.metricCount("hist_total", s.histTotal);
    r.metricCount("hist_underflow", s.histUnderflow);
    r.metricCount("hist_overflow", s.histOverflow);
    r.metric("hist_min", s.histMin);
    r.metric("hist_max", s.histMax);

    auto countSeries = [&](const char *name,
                           const std::vector<std::uint64_t> &vs) {
        std::vector<double> d(vs.size());
        std::transform(vs.begin(), vs.end(), d.begin(),
                       [](std::uint64_t v) {
                           return static_cast<double>(v);
                       });
        r.series(name, std::move(d));
    };
    countSeries("bank_events", s.bankEvents);
    r.series("bank_deepest", s.bankDeepest);
    countSeries("core_instructions", s.coreInstructions);
    countSeries("core_stall_cycles", s.coreStallCycles);
    if (!s.timeline.empty())
        r.series("timeline", s.timeline);
    if (!s.traceSamples.empty())
        r.series("trace_samples", s.traceSamples);
    if (s.controllerActive) {
        r.metric("ctrl_final_margin", s.ctrlFinalMargin);
        r.metric("ctrl_avg_margin", s.ctrlAvgMargin);
        r.metric("ctrl_min_margin", s.ctrlMinMargin);
        r.metric("ctrl_max_margin", s.ctrlMaxMargin);
        r.metricCount("ctrl_updates", s.ctrlUpdates);
        r.metricCount("ctrl_widenings", s.ctrlWidenings);
    }
}

Result
runSummaryItem(const BatchItem &item)
{
    Result r("serve/summary");
    r.setSeed(item.cfg.seed);
    r.setJobs(item.cfg.jobs);
    const simtest::RunSummary s =
        simtest::summarizeRun(item.cfg, /*forceScalar=*/false);
    summaryMetrics(s, r);
    return r;
}

Result
runPopulationItem(const BatchItem &item)
{
    const std::size_t n = static_cast<std::size_t>(item.population);
    // Shard across the pool; seeds derive from the index alone, and
    // the merge below runs after the join in index order, so the
    // Result is bit-identical for any job count.
    const auto runs = parallelMap<simtest::RunSummary>(
        n, [&](std::size_t i) {
            simtest::FuzzConfig c = item.cfg;
            c.seed = item.cfg.seed +
                static_cast<std::uint64_t>(i) * kSeedStride;
            return simtest::summarizeRun(c, /*forceScalar=*/false);
        });

    std::uint64_t cycles = 0, emergencies = 0;
    std::uint64_t total = 0, underflow = 0, overflow = 0;
    double histMin = 0.0, histMax = 0.0, deviationMax = 0.0;
    std::vector<std::uint64_t> bins;
    for (const auto &s : runs) {
        cycles += s.cycles;
        emergencies += s.emergencies;
        total += s.histTotal;
        underflow += s.histUnderflow;
        overflow += s.histOverflow;
        histMin = std::min(histMin, s.histMin);
        histMax = std::max(histMax, s.histMax);
        deviationMax = std::max(deviationMax, s.deviation);
        if (bins.empty())
            bins.resize(s.histBins.size(), 0);
        for (std::size_t b = 0; b < s.histBins.size(); ++b)
            bins[b] += s.histBins[b];
    }

    Result r("serve/population");
    r.setSeed(item.cfg.seed);
    r.setJobs(item.cfg.jobs);
    r.metricCount("population", item.population);
    r.metricCount("cycles_total", cycles);
    r.metricCount("emergencies", emergencies);
    r.metricCount("hist_total", total);
    r.metricCount("hist_underflow", underflow);
    r.metricCount("hist_overflow", overflow);
    r.metric("hist_min", histMin);
    r.metric("hist_max", histMax);
    r.metric("deviation_max", deviationMax);

    // The merged CDF at coarse resolution: 100 equal groups of fine
    // bins (the fine histogram is thousands of bins — too heavy per
    // response item, and the tail masses above are exact counts).
    if (!bins.empty()) {
        constexpr std::size_t kGroups = 100;
        const std::size_t groups = std::min(kGroups, bins.size());
        std::vector<double> coarse(groups, 0.0);
        for (std::size_t b = 0; b < bins.size(); ++b) {
            const std::size_t g =
                std::min(groups - 1, b * groups / bins.size());
            coarse[g] += static_cast<double>(bins[b]);
        }
        r.series("hist_coarse", std::move(coarse));
    }
    return r;
}

Result
runOracleCellItem(const BatchItem &item)
{
    std::vector<workload::SpecBenchmark> suite;
    suite.push_back(workload::specByName(item.benchA));
    const bool same = item.benchA == item.benchB;
    if (!same)
        suite.push_back(workload::specByName(item.benchB));

    sched::OracleConfig cfg;
    cfg.cyclesPerPair = item.cyclesPerPair;
    cfg.seed = item.oracleSeed;
    cfg.system.package = pdn::PackageConfig::core2duo()
                             .withDecapFraction(item.decapFraction);
    const sched::OracleMatrix m(suite, cfg);
    const sched::PairProfile &p = same ? m.pair(0, 0) : m.pair(0, 1);

    Result r("serve/oracle_cell");
    r.setSeed(item.oracleSeed);
    r.metric("droops_per_1k", p.droopsPer1k);
    r.metric("ipc", p.ipc);
    r.metricCount("cycles", p.emergencies.cycles);
    r.series("emergency_margins", p.emergencies.margins);
    std::vector<double> counts(p.emergencies.counts.size());
    std::transform(p.emergencies.counts.begin(),
                   p.emergencies.counts.end(), counts.begin(),
                   [](std::uint64_t v) {
                       return static_cast<double>(v);
                   });
    r.series("emergency_counts", std::move(counts));
    return r;
}

Result
runAdaptiveMarginItem(const BatchItem &item)
{
    // fromJson coerced the controller on, so this is a summary run
    // whose Result carries the ctrl_* margin-trajectory metrics.
    Result r("serve/adaptive_margin");
    r.setSeed(item.cfg.seed);
    r.setJobs(item.cfg.jobs);
    const simtest::RunSummary s =
        simtest::summarizeRun(item.cfg, /*forceScalar=*/false);
    summaryMetrics(s, r);
    return r;
}

Result
runFaultSweepItem(const BatchItem &item)
{
    // The rig is a detailed core; cap the per-margin run so a sweep
    // stays a serving-sized item even at kMaxCycles configs.
    const Cycles cycles = std::min<Cycles>(item.cfg.cycles, 200'000);
    const auto counts = parallelMap<simtest::FaultRigCounts>(
        item.faultMargins.size(), [&](std::size_t i) {
            return simtest::runFaultRig(item.cfg.seed,
                                        item.faultMargins[i],
                                        item.cfg.faultRate, cycles);
        });

    Result r("serve/fault_sweep");
    r.setSeed(item.cfg.seed);
    r.setJobs(item.cfg.jobs);
    r.metricCount("cycles_per_margin", cycles);
    r.metric("rate_at_zero_margin", item.cfg.faultRate);
    r.series("margins", item.faultMargins);
    auto series = [&](const char *name, auto field) {
        std::vector<double> vs(counts.size());
        for (std::size_t i = 0; i < counts.size(); ++i)
            vs[i] = static_cast<double>(counts[i].*field);
        r.series(name, std::move(vs));
    };
    series("faults_l1d", &simtest::FaultRigCounts::l1dFaults);
    series("faults_l2", &simtest::FaultRigCounts::l2Faults);
    series("faults_tlb", &simtest::FaultRigCounts::tlbFaults);
    series("misses_l1d", &simtest::FaultRigCounts::l1dMisses);
    series("misses_l2", &simtest::FaultRigCounts::l2Misses);
    series("misses_tlb", &simtest::FaultRigCounts::tlbMisses);
    series("instructions", &simtest::FaultRigCounts::instructions);
    return r;
}

Result
runFuzzItem(const BatchItem &item)
{
    std::vector<std::string> names = item.properties;
    if (names.empty()) {
        for (const auto &p : simtest::propertyRegistry())
            names.push_back(p.name);
    }
    Result r("serve/fuzz");
    r.setSeed(item.cfg.seed);
    r.setJobs(item.cfg.jobs);
    std::uint64_t passes = 0, failures = 0;
    for (const auto &name : names) {
        const simtest::Property *p = simtest::findProperty(name);
        std::string why;
        const bool ok = p->check(item.cfg, &why);
        (ok ? passes : failures) += 1;
        r.metricCount("pass_" + name, ok ? 1 : 0);
    }
    r.metricCount("checked", passes + failures);
    r.metricCount("passes", passes);
    r.metricCount("failures", failures);
    return r;
}

} // namespace

bool
BatchItem::fromJson(const Json &j, BatchItem &out, std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };
    if (!j.isObject())
        return fail("batch item is not a JSON object");
    out = BatchItem{};
    if (const Json *id = j.find("id"); id && id->isString())
        out.id = id->asString();
    if (const Json *k = j.find("kind")) {
        if (!k->isString())
            return fail("'kind' is not a string");
        out.kind = k->asString();
    }
    const bool usesConfig = out.kind == "summary" ||
        out.kind == "population" || out.kind == "fuzz" ||
        out.kind == "adaptive_margin" || out.kind == "fault_sweep";
    if (out.kind == "oracle_cell") {
        const Json *a = j.find("bench_a");
        const Json *b = j.find("bench_b");
        if (!a || !a->isString() || !b || !b->isString())
            return fail("oracle_cell needs string 'bench_a' and "
                        "'bench_b'");
        out.benchA = a->asString();
        out.benchB = b->asString();
        if (!knownBenchmark(out.benchA))
            return fail("unknown benchmark '" + out.benchA + "'");
        if (!knownBenchmark(out.benchB))
            return fail("unknown benchmark '" + out.benchB + "'");
        if (const Json *c = j.find("cycles_per_pair")) {
            std::uint64_t v = 0;
            if (!c->exactUint64(&v) || v < 1 || v > kMaxOracleCycles)
                return fail("'cycles_per_pair' outside [1, " +
                            std::to_string(kMaxOracleCycles) + "]");
            out.cyclesPerPair = v;
        }
        if (const Json *d = j.find("decap_fraction")) {
            if (!d->isNumber() || d->asNumber() < 0.0 ||
                d->asNumber() > 1.0)
                return fail("'decap_fraction' outside [0, 1]");
            out.decapFraction = d->asNumber();
        }
        if (const Json *s = j.find("oracle_seed")) {
            std::uint64_t v = 0;
            if (!s->exactUint64(&v))
                return fail("'oracle_seed' is not an exact uint64");
            out.oracleSeed = v;
        }
    } else if (usesConfig) {
        if (const Json *cfg = j.find("config")) {
            if (!simtest::FuzzConfig::fromJson(*cfg, out.cfg, error))
                return false;
        }
        if (out.kind == "population") {
            if (const Json *p = j.find("population")) {
                std::uint64_t v = 0;
                if (!p->exactUint64(&v) || v < 1 ||
                    v > kMaxPopulation)
                    return fail("'population' outside [1, " +
                                std::to_string(kMaxPopulation) + "]");
                out.population = v;
            }
        }
        if (out.kind == "fuzz") {
            if (const Json *props = j.find("properties")) {
                if (!props->isArray())
                    return fail("'properties' is not an array");
                for (const Json &p : props->asArray()) {
                    if (!p.isString())
                        return fail("property name is not a string");
                    if (!simtest::findProperty(p.asString()))
                        return fail("unknown property '" +
                                    p.asString() + "'");
                    out.properties.push_back(p.asString());
                }
            }
        }
        if (out.kind == "adaptive_margin") {
            // Coerce the controller on *at parse time* so the
            // canonical cache key describes the scenario actually
            // executed (the fixed fail-safe is dropped — the two are
            // mutually exclusive margin authorities).
            out.cfg.controller = true;
            out.cfg.emergencyMargin = 0.0;
            out.cfg.recoveryCost = 0;
        }
        if (out.kind == "fault_sweep") {
            if (const Json *m = j.find("margins")) {
                if (!m->isArray() || m->asArray().empty())
                    return fail("'margins' is not a non-empty array");
                if (m->asArray().size() > 16)
                    return fail("'margins' has more than 16 entries");
                out.faultMargins.clear();
                for (const Json &v : m->asArray()) {
                    if (!v.isNumber() || v.asNumber() < 0.0 ||
                        v.asNumber() > 0.25)
                        return fail("sweep margin outside [0, 0.25]");
                    out.faultMargins.push_back(v.asNumber());
                }
            }
        }
    } else {
        return fail("unknown experiment kind '" + out.kind +
                    "' (summary|population|oracle_cell|fuzz|"
                    "adaptive_margin|fault_sweep)");
    }
    return true;
}

const std::string &
BatchItem::canonicalKey() const
{
    // Fixed field order, no default omission: only parameters that
    // affect the Result participate, so equal keys really do mean
    // interchangeable cached bytes. Built once; every later caller
    // (hashing, cache insert, logging) reuses the same bytes.
    if (!canonicalKey_.empty())
        return canonicalKey_;
    Json key = Json::object();
    key.set("kind", kind);
    if (kind == "oracle_cell") {
        key.set("bench_a", benchA);
        key.set("bench_b", benchB);
        key.set("cycles_per_pair", Json(cyclesPerPair));
        key.set("decap_fraction", Json(decapFraction));
        key.set("oracle_seed", Json(oracleSeed));
    } else {
        key.set("config", cfg.toJson(/*omitDefaults=*/false));
        if (kind == "population")
            key.set("population", Json(population));
        if (kind == "fuzz")
            key.set("properties", propertiesJson(properties));
        if (kind == "fault_sweep") {
            Json margins = Json::array();
            for (double m : faultMargins)
                margins.push(Json(m));
            key.set("margins", margins);
        }
    }
    canonicalKey_ = key.dump();
    return canonicalKey_;
}

Result
runBatchItem(const BatchItem &item)
{
    if (item.kind == "summary")
        return runSummaryItem(item);
    if (item.kind == "population")
        return runPopulationItem(item);
    if (item.kind == "oracle_cell")
        return runOracleCellItem(item);
    if (item.kind == "adaptive_margin")
        return runAdaptiveMarginItem(item);
    if (item.kind == "fault_sweep")
        return runFaultSweepItem(item);
    return runFuzzItem(item);
}

std::string
serializeResult(const Result &r)
{
    return r.toJson().dump();
}

} // namespace vsmooth::serve
