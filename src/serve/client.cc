#include "client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "batch.hh"
#include "cache.hh"
#include "common/logging.hh"
#include "protocol.hh"

namespace vsmooth::serve {

namespace {

/** Load the batch file's item array; fatals on unreadable/invalid
 *  input (a CLI usage error, not a protocol condition). */
Json
loadItems(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open batch file '%s'", path.c_str());
    std::stringstream buf;
    buf << in.rdbuf();
    std::string error;
    Json j = Json::parse(buf.str(), &error);
    if (!error.empty())
        fatal("batch file '%s': %s", path.c_str(), error.c_str());
    if (j.isArray())
        return j;
    if (j.isObject()) {
        if (const Json *items = j.find("items"); items &&
            items->isArray())
            return *items;
    }
    fatal("batch file '%s' is neither an item array nor an object "
          "with 'items'",
          path.c_str());
}

int
runLocal(const ClientOptions &opt)
{
    const Json items = loadItems(opt.batchFile);
    int rc = 0;
    for (std::size_t i = 0; i < items.asArray().size(); ++i) {
        BatchItem item;
        std::string error;
        if (!BatchItem::fromJson(items.asArray()[i], item, &error)) {
            std::cerr << "item " << i << ": " << error << "\n";
            rc = 1;
            continue;
        }
        const std::string payload =
            serializeResult(runBatchItem(item));
        if (opt.resultsOnly) {
            std::cout << payload << "\n";
            continue;
        }
        std::cout << "{\"type\": \"result\", \"batch\": "
                  << Json(opt.batchId).dump() << ", \"item\": "
                  << Json(item.id.empty() ? std::to_string(i)
                                          : item.id)
                         .dump()
                  << ", \"index\": " << i
                  << ", \"cache\": \"local\", \"config_hash\": \""
                  << fnv1aHex(item.canonicalKey())
                  << "\", \"result\": " << payload << "}\n";
    }
    return rc;
}

int
connectTo(const ClientOptions &opt)
{
    if (!opt.socketPath.empty()) {
        sockaddr_un addr{};
        if (opt.socketPath.size() >= sizeof(addr.sun_path))
            fatal("socket path too long (%zu bytes)",
                  opt.socketPath.size());
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            fatal("socket: %s", std::strerror(errno));
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, opt.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0)
            fatal("cannot connect to '%s': %s",
                  opt.socketPath.c_str(), std::strerror(errno));
        return fd;
    }
    if (opt.port <= 0)
        fatal("client needs --socket PATH or --port N (or --local)");
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        fatal("socket: %s", std::strerror(errno));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(opt.port));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0)
        fatal("cannot connect to 127.0.0.1:%d: %s", opt.port,
              std::strerror(errno));
    return fd;
}

/** One response attributed to an item, for index-ordered printing. */
struct ItemResponse
{
    std::size_t index = 0;
    std::string line;
};

int
runRemote(const ClientOptions &opt)
{
    const int fd = connectTo(opt);

    if (opt.shutdown || opt.stats) {
        Json req = Json::object();
        req.set("type", opt.shutdown ? "shutdown" : "stats");
        if (!sendLine(fd, req.dump()))
            fatal("cannot send request: %s", std::strerror(errno));
        LineReader reader(fd);
        std::string line;
        const LineReader::Status st = reader.next(&line);
        ::close(fd);
        if (st != LineReader::Status::Line) {
            std::cerr << "no response from server\n";
            return 1;
        }
        std::cout << line << "\n";
        return 0;
    }

    const Json items = loadItems(opt.batchFile);
    std::string req = "{\"type\": \"batch\", \"id\": " +
        Json(opt.batchId).dump() + ", \"items\": " + items.dump() +
        "}";
    if (!sendLine(fd, req))
        fatal("cannot send batch: %s", std::strerror(errno));

    LineReader reader(fd);
    std::vector<ItemResponse> responses;
    std::string done;
    bool sawError = false, sawRetryable = false;
    std::string line;
    for (;;) {
        const LineReader::Status st = reader.next(&line);
        if (st != LineReader::Status::Line) {
            std::cerr << "connection lost before batch_done\n";
            ::close(fd);
            return 1;
        }
        std::string parseError;
        const Json j = Json::parse(line, &parseError);
        if (!parseError.empty()) {
            std::cerr << "unparseable response: " << parseError
                      << "\n";
            ::close(fd);
            return 1;
        }
        const Json *type = j.find("type");
        const std::string t =
            type && type->isString() ? type->asString() : "";
        if (t == "batch_done") {
            done = line;
            break;
        }
        ItemResponse r;
        if (const Json *idx = j.find("index");
            idx && idx->isNumber())
            r.index = static_cast<std::size_t>(idx->asNumber());
        if (t == "error") {
            const Json *retry = j.find("retryable");
            (retry && retry->isBool() && retry->asBool()
                 ? sawRetryable
                 : sawError) = true;
            r.line = line;
        } else if (opt.resultsOnly) {
            const Json *result = j.find("result");
            // Re-dumping is byte-exact: the writer is deterministic
            // and integers/doubles round-trip losslessly.
            r.line = result ? result->dump() : line;
        } else {
            r.line = line;
        }
        responses.push_back(std::move(r));
    }
    ::close(fd);

    std::stable_sort(responses.begin(), responses.end(),
                     [](const ItemResponse &a, const ItemResponse &b) {
                         return a.index < b.index;
                     });
    for (const auto &r : responses)
        std::cout << r.line << "\n";
    if (!opt.resultsOnly && !done.empty())
        std::cout << done << "\n";
    if (sawError)
        return 1;
    return sawRetryable ? 3 : 0;
}

} // namespace

int
runClient(const ClientOptions &opt)
{
    if (opt.local)
        return runLocal(opt);
    return runRemote(opt);
}

} // namespace vsmooth::serve
