#include "cache.hh"

namespace vsmooth::serve {

std::string
fnv1aHex(std::string_view bytes)
{
    std::uint64_t h = 14695981039346656037ull;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    static const char *digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[h & 0xf];
        h >>= 4;
    }
    return out;
}

bool
ResultCache::lookup(const std::string &key, std::string *out)
{
    std::lock_guard lk(m_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
        ++stats_.misses;
        return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.hits;
    if (out)
        *out = it->second->payload;
    return true;
}

void
ResultCache::insert(const std::string &key, std::string payload)
{
    std::lock_guard lk(m_);
    if (const auto it = index_.find(key); it != index_.end()) {
        // Refresh: same canonical config must map to the same bytes,
        // but a re-insert after eviction races are harmless — keep
        // the newest payload and recency.
        bytes_ -= entryBytes(*it->second);
        it->second->payload = std::move(payload);
        bytes_ += entryBytes(*it->second);
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    Entry e{key, std::move(payload)};
    const std::size_t need = entryBytes(e);
    if (need > budget_)
        return; // larger than the whole cache: not worth thrashing
    while (bytes_ + need > budget_ && !lru_.empty()) {
        bytes_ -= entryBytes(lru_.back());
        index_.erase(lru_.back().key);
        lru_.pop_back();
        ++stats_.evictions;
    }
    lru_.push_front(std::move(e));
    index_.emplace(lru_.front().key, lru_.begin());
    bytes_ += need;
    ++stats_.insertions;
}

ResultCache::Stats
ResultCache::stats() const
{
    std::lock_guard lk(m_);
    Stats s = stats_;
    s.entries = lru_.size();
    s.bytes = bytes_;
    return s;
}

} // namespace vsmooth::serve
