/**
 * @file
 * Content-addressed Result cache for `vsmooth serve`.
 *
 * Keyed by the canonical JSON of a batch item (kind + full,
 * non-default-omitting config dump), so two requests describing the
 * same scenario — regardless of field order in the request or which
 * defaults the client spelled out — hit the same entry. Values are the
 * exact serialized Result bytes that were first streamed back, which
 * makes a cache hit bit-identical to the original computation by
 * construction. Eviction is LRU under a byte budget; hit/miss counters
 * feed the per-response metadata and the `stats` request.
 */

#ifndef VSMOOTH_SERVE_CACHE_HH
#define VSMOOTH_SERVE_CACHE_HH

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace vsmooth::serve {

/** FNV-1a 64-bit hash as 16 hex digits — the compact config
 *  fingerprint stamped into response metadata (the full canonical key
 *  can be kilobytes). */
std::string fnv1aHex(std::string_view bytes);

/** Thread-safe LRU cache: canonical config key -> serialized Result. */
class ResultCache
{
  public:
    /** `byteBudget` bounds the sum of key + payload sizes; 0 disables
     *  caching entirely (every lookup misses, inserts drop). */
    explicit ResultCache(std::size_t byteBudget)
        : budget_(byteBudget)
    {
    }

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    /** On hit copies the payload into *out, refreshes recency, and
     *  counts a hit; on miss counts a miss. */
    bool lookup(const std::string &key, std::string *out);

    /** Insert (or refresh) an entry, evicting least-recently-used
     *  entries until the budget holds. An entry larger than the whole
     *  budget is not cached. */
    void insert(const std::string &key, std::string payload);

    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t insertions = 0;
        std::uint64_t evictions = 0;
        std::size_t entries = 0;
        std::size_t bytes = 0;
    };
    Stats stats() const;

  private:
    struct Entry
    {
        std::string key;
        std::string payload;
    };

    std::size_t entryBytes(const Entry &e) const
    {
        return e.key.size() + e.payload.size();
    }

    mutable std::mutex m_;
    std::size_t budget_;
    std::size_t bytes_ = 0;
    std::list<Entry> lru_; // front = most recent
    std::unordered_map<std::string, std::list<Entry>::iterator> index_;
    Stats stats_;
};

} // namespace vsmooth::serve

#endif // VSMOOTH_SERVE_CACHE_HH
