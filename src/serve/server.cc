#include "server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "batch.hh"
#include "cache.hh"
#include "common/fsio.hh"
#include "common/logging.hh"
#include "protocol.hh"
#include "queue.hh"

namespace vsmooth::serve {

namespace {

/** Self-pipe written by the signal handler; -1 when no server runs. */
std::atomic<int> g_signalPipe{-1};

extern "C" void
onTermSignal(int)
{
    const int fd = g_signalPipe.load(std::memory_order_relaxed);
    if (fd >= 0) {
        const char byte = 1;
        [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
    }
}

/** One client connection. Response lines are written under `writeM`
 *  so concurrent executor completions never interleave bytes. */
struct Connection
{
    explicit Connection(int fd) : fd(fd) {}
    ~Connection()
    {
        if (fd >= 0)
            ::close(fd);
    }

    bool
    send(const std::string &line)
    {
        std::lock_guard lk(writeM);
        return sendLine(fd, line);
    }

    bool send(const Json &j) { return send(j.dump()); }

    int fd;
    std::mutex writeM;
};

/** Progress of one batch request; the executor completing the final
 *  item sends batch_done. */
struct BatchState
{
    std::shared_ptr<Connection> conn;
    std::string batchId;
    std::size_t items = 0;
    std::atomic<std::size_t> remaining{0};
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> errors{0};

    void
    finishOne()
    {
        if (remaining.fetch_sub(1) != 1)
            return;
        Json done = Json::object();
        done.set("type", "batch_done");
        done.set("batch", batchId);
        done.set("items", Json(static_cast<std::uint64_t>(items)));
        done.set("cache_hits", Json(hits.load()));
        done.set("cache_misses", Json(misses.load()));
        done.set("rejected", Json(rejected.load()));
        done.set("errors", Json(errors.load()));
        conn->send(done);
    }
};

/** The result envelope embeds the serialized Result payload verbatim
 *  — cache hits are bit-identical to the first computation because
 *  the very same bytes are spliced back in. */
std::string
resultLine(const BatchState &b, const std::string &itemId,
           std::size_t index, const char *cache,
           const std::string &configHash, const std::string &payload)
{
    std::string line = "{\"type\": \"result\", \"batch\": ";
    line += Json(b.batchId).dump();
    line += ", \"item\": ";
    line += Json(itemId).dump();
    line += ", \"index\": ";
    line += std::to_string(index);
    line += ", \"cache\": \"";
    line += cache;
    line += "\", \"config_hash\": \"";
    line += configHash;
    line += "\", \"result\": ";
    line += payload;
    line += "}";
    return line;
}

Json
withItemContext(Json error, const std::string &batchId,
                const std::string &itemId, std::size_t index)
{
    error.set("batch", batchId);
    error.set("item", itemId);
    error.set("index", Json(static_cast<std::uint64_t>(index)));
    return error;
}

class Server
{
  public:
    explicit Server(const ServeOptions &opt)
        : opt_(opt), cache_(opt.cacheBytes),
          queue_(opt.queueCapacity == 0 ? 1 : opt.queueCapacity)
    {
    }

    int run();

  private:
    bool listenSocket();
    void acceptLoop();
    void serveConnection(std::shared_ptr<Connection> conn);
    void handleRequest(const std::shared_ptr<Connection> &conn,
                       const std::string &line);
    void handleBatch(const std::shared_ptr<Connection> &conn,
                     const Json &req);
    void requestDrain();

    ServeOptions opt_;
    ResultCache cache_;
    TaskQueue queue_;

    int listenFd_ = -1;
    int wakeRead_ = -1;
    int wakeWrite_ = -1;
    std::atomic<bool> draining_{false};

    std::mutex connsM_;
    std::vector<std::shared_ptr<Connection>> conns_;
    std::vector<std::thread> connThreads_;
};

bool
Server::listenSocket()
{
    if (!opt_.socketPath.empty()) {
        sockaddr_un addr{};
        if (opt_.socketPath.size() >= sizeof(addr.sun_path)) {
            warn("serve: socket path too long (%zu bytes)",
                  opt_.socketPath.size());
            return false;
        }
        listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listenFd_ < 0)
            return false;
        ::unlink(opt_.socketPath.c_str());
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, opt_.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0 ||
            ::listen(listenFd_, 64) != 0) {
            warn("serve: cannot listen on '%s': %s",
                  opt_.socketPath.c_str(), std::strerror(errno));
            return false;
        }
        inform("serve: listening on unix socket %s",
             opt_.socketPath.c_str());
        if (!opt_.readyFile.empty()) {
            writeFileAtomic(opt_.readyFile, [&](std::ostream &os) {
                os << "unix " << opt_.socketPath << "\n";
                return os.good();
            });
        }
        return true;
    }

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return false;
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(opt_.port));
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd_, 64) != 0) {
        warn("serve: cannot listen on port %d: %s", opt_.port,
              std::strerror(errno));
        return false;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                  &len);
    const int port = ntohs(addr.sin_port);
    inform("serve: listening on 127.0.0.1:%d", port);
    if (!opt_.readyFile.empty()) {
        writeFileAtomic(opt_.readyFile, [&](std::ostream &os) {
            os << "tcp " << port << "\n";
            return os.good();
        });
    }
    return true;
}

int
Server::run()
{
    int pipeFds[2];
    if (::pipe(pipeFds) != 0) {
        warn("serve: pipe: %s", std::strerror(errno));
        return 1;
    }
    wakeRead_ = pipeFds[0];
    wakeWrite_ = pipeFds[1];
    g_signalPipe.store(wakeWrite_);

    // Writes race client disconnects by design; the failed send is
    // the signal, not SIGPIPE.
    ::signal(SIGPIPE, SIG_IGN);
    struct sigaction sa{};
    sa.sa_handler = onTermSignal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);

    if (!listenSocket())
        return 1;

    std::vector<std::thread> executors;
    for (std::size_t i = 0; i < std::max<std::size_t>(1, opt_.workers);
         ++i) {
        executors.emplace_back([this] {
            Task t;
            while (queue_.pop(&t)) {
                t.run();
                queue_.taskDone();
            }
        });
    }

    acceptLoop();

    // --- graceful drain -------------------------------------------------
    ::close(listenFd_);
    listenFd_ = -1;
    if (!opt_.socketPath.empty())
        ::unlink(opt_.socketPath.c_str());

    // Reject everything still queued (their connections hear a
    // retryable status), let in-flight items finish and deliver.
    queue_.beginDrain();
    queue_.awaitIdle();
    for (auto &t : executors)
        t.join();

    // Quiesce the readers: pending requests already dispatched, new
    // reads see EOF.
    {
        std::lock_guard lk(connsM_);
        for (const auto &c : conns_)
            ::shutdown(c->fd, SHUT_RD);
    }
    for (auto &t : connThreads_)
        t.join();

    g_signalPipe.store(-1);
    ::close(wakeRead_);
    ::close(wakeWrite_);
    inform("serve: drained, exiting");
    return 0;
}

void
Server::acceptLoop()
{
    for (;;) {
        pollfd fds[2] = {{listenFd_, POLLIN, 0},
                         {wakeRead_, POLLIN, 0}};
        const int rc = ::poll(fds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            warn("serve: poll: %s", std::strerror(errno));
            return;
        }
        if (fds[1].revents & POLLIN)
            return; // SIGTERM/SIGINT or shutdown request
        if (!(fds[0].revents & POLLIN))
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        auto conn = std::make_shared<Connection>(fd);
        std::lock_guard lk(connsM_);
        conns_.push_back(conn);
        connThreads_.emplace_back(
            [this, conn] { serveConnection(conn); });
    }
}

void
Server::serveConnection(std::shared_ptr<Connection> conn)
{
    LineReader reader(conn->fd);
    std::string line;
    for (;;) {
        switch (reader.next(&line)) {
        case LineReader::Status::Line:
            handleRequest(conn, line);
            break;
        case LineReader::Status::Oversized:
            // Structured error, connection stays usable: the frame
            // was consumed to its newline.
            conn->send(makeError(
                "line_too_long",
                "request exceeds " + std::to_string(kMaxLineBytes) +
                    " bytes per line"));
            break;
        case LineReader::Status::Eof:
        case LineReader::Status::Error:
            return;
        }
    }
}

void
Server::handleRequest(const std::shared_ptr<Connection> &conn,
                      const std::string &line)
{
    if (line.empty())
        return;
    std::string parseError;
    const Json req = Json::parse(line, &parseError);
    if (!parseError.empty()) {
        conn->send(makeError("bad_json", parseError));
        return;
    }
    const Json *type = req.find("type");
    if (!type || !type->isString()) {
        conn->send(makeError("bad_request",
                             "missing string field 'type'"));
        return;
    }
    const std::string &t = type->asString();
    if (t == "ping") {
        Json pong = Json::object();
        pong.set("type", "pong");
        conn->send(pong);
        return;
    }
    if (t == "stats") {
        const ResultCache::Stats s = cache_.stats();
        Json j = Json::object();
        j.set("type", "stats");
        j.set("cache_hits", Json(s.hits));
        j.set("cache_misses", Json(s.misses));
        j.set("cache_insertions", Json(s.insertions));
        j.set("cache_evictions", Json(s.evictions));
        j.set("cache_entries",
              Json(static_cast<std::uint64_t>(s.entries)));
        j.set("cache_bytes",
              Json(static_cast<std::uint64_t>(s.bytes)));
        j.set("queue_depth",
              Json(static_cast<std::uint64_t>(queue_.depth())));
        j.set("draining", queue_.draining());
        conn->send(j);
        return;
    }
    if (t == "shutdown") {
        Json j = Json::object();
        j.set("type", "shutting_down");
        conn->send(j);
        requestDrain();
        return;
    }
    if (t == "batch") {
        handleBatch(conn, req);
        return;
    }
    conn->send(makeError("bad_request",
                         "unknown request type '" + t + "'"));
}

void
Server::handleBatch(const std::shared_ptr<Connection> &conn,
                    const Json &req)
{
    const Json *items = req.find("items");
    if (!items || !items->isArray()) {
        conn->send(
            makeError("bad_request", "batch lacks array 'items'"));
        return;
    }
    auto state = std::make_shared<BatchState>();
    state->conn = conn;
    if (const Json *id = req.find("id"); id && id->isString())
        state->batchId = id->asString();
    state->items = items->asArray().size();
    // +1 guard ref: the submission loop below must finish before any
    // executor completion can believe it delivered the last item.
    state->remaining.store(state->items + 1);

    for (std::size_t i = 0; i < items->asArray().size(); ++i) {
        const Json &itemJson = items->asArray()[i];
        auto item = std::make_shared<BatchItem>();
        std::string parseError;
        if (!BatchItem::fromJson(itemJson, *item, &parseError)) {
            // A malformed item is a structured per-item error; the
            // rest of the batch still runs.
            ++state->errors;
            conn->send(withItemContext(
                makeError("bad_item", parseError), state->batchId,
                item->id.empty() ? std::to_string(i) : item->id, i));
            state->finishOne();
            continue;
        }
        if (item->id.empty())
            item->id = std::to_string(i);

        // Serialized once here on the submission thread and memoized
        // in the item; the executor task below reuses the same bytes
        // through its shared_ptr instead of capturing copies.
        const std::string &key = item->canonicalKey();
        const std::string hash = fnv1aHex(key);
        std::string payload;
        if (cache_.lookup(key, &payload)) {
            ++state->hits;
            conn->send(resultLine(*state, item->id, i, "hit", hash,
                                  payload));
            state->finishOne();
            continue;
        }

        const std::size_t index = i;
        Task task;
        task.run = [this, state, item, hash, index] {
            const Result r = runBatchItem(*item);
            std::string bytes = serializeResult(r);
            state->conn->send(resultLine(*state, item->id, index,
                                         "miss", hash, bytes));
            cache_.insert(item->canonicalKey(), std::move(bytes));
            ++state->misses;
            state->finishOne();
        };
        task.reject = [state, item, index] {
            ++state->rejected;
            Json e = makeError("draining",
                               "server is draining; resubmit later",
                               /*retryable=*/true);
            state->conn->send(withItemContext(e, state->batchId,
                                              item->id, index));
            state->finishOne();
        };
        switch (queue_.push(std::move(task))) {
        case TaskQueue::Push::Accepted:
            break;
        case TaskQueue::Push::Busy:
            ++state->rejected;
            conn->send(withItemContext(
                makeError("busy", "queue full; resubmit later",
                          /*retryable=*/true),
                state->batchId, item->id, i));
            state->finishOne();
            break;
        case TaskQueue::Push::Draining:
            ++state->rejected;
            conn->send(withItemContext(
                makeError("draining",
                          "server is draining; resubmit later",
                          /*retryable=*/true),
                state->batchId, item->id, i));
            state->finishOne();
            break;
        }
    }
    state->finishOne(); // drop the guard ref
}

void
Server::requestDrain()
{
    if (draining_.exchange(true))
        return;
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wakeWrite_, &byte, 1);
}

} // namespace

int
runServe(const ServeOptions &opt)
{
    Server server(opt);
    return server.run();
}

} // namespace vsmooth::serve
