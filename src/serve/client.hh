/**
 * @file
 * Scriptable client for the serve protocol (`vsmooth client`).
 *
 * Submits a batch file to a running daemon and prints the streamed
 * responses, reordered by item index so the output is deterministic
 * regardless of executor completion order. `--results-only` prints
 * one serialized Result per line — the same bytes `--local` prints
 * when executing the batch in-process, which is how tests and ci.sh
 * assert the served results are bit-identical to the offline run.
 */

#ifndef VSMOOTH_SERVE_CLIENT_HH
#define VSMOOTH_SERVE_CLIENT_HH

#include <string>

namespace vsmooth::serve {

struct ClientOptions
{
    /** Unix-domain socket path (takes precedence when non-empty). */
    std::string socketPath;
    /** TCP port on 127.0.0.1. Used when socketPath is empty. */
    int port = 0;
    /** Batch file: {"items": [...]} or a bare JSON array of items. */
    std::string batchFile;
    /** Batch id echoed in responses. */
    std::string batchId = "cli";
    /** Execute the batch in-process instead of contacting a server
     *  (the offline reference for bit-identity checks). */
    bool local = false;
    /** Print only the serialized Result per item (index order). */
    bool resultsOnly = false;
    /** Send a shutdown request instead of a batch. */
    bool shutdown = false;
    /** Send a stats request instead of a batch. */
    bool stats = false;
};

/**
 * Exit codes: 0 = all items succeeded; 1 = usage/connection/protocol
 * failure or a non-retryable item error; 3 = at least one item was
 * rejected with a retryable status (busy/draining) — resubmit.
 */
int runClient(const ClientOptions &opt);

} // namespace vsmooth::serve

#endif // VSMOOTH_SERVE_CLIENT_HH
