/**
 * @file
 * Batch items: the unit of work `vsmooth serve` executes.
 *
 * A batch item is an experiment kind plus a `simtest` scenario config
 * (the same FuzzConfig JSON the fuzzer replays), and for some kinds a
 * few kind-specific parameters. Six kinds cover the paper's serving
 * workloads:
 *
 *   - "summary":     one full-stack run, every observable reduced to
 *                    a Result (counts exact, doubles bit-stable);
 *   - "population":  N index-seeded runs of the same scenario merged
 *                    into one voltage-CDF Result (Fig 7/9 points);
 *   - "oracle_cell": one co-schedule cell of the paper's oracle
 *                    matrix (Sec IV-C) — droops/1k and combined IPC
 *                    for a benchmark pair;
 *   - "fuzz":        the property registry checked against the
 *                    config (a fuzz-campaign cell);
 *   - "adaptive_margin": the config run with the closed-loop margin
 *                    controller coerced on (the fixed fail-safe is
 *                    dropped — one margin authority), reporting the
 *                    controller's margin trajectory observables;
 *   - "fault_sweep": the fault-injection rig swept across a margin
 *                    list, reporting per-structure fault/miss counts
 *                    at each margin.
 *
 * Execution is deterministic by construction: every seed is derived
 * from the item's config and the run index, never from server state,
 * so any sharding of a batch — across connections, executor threads,
 * or repeated submissions — produces bit-identical Result JSON to
 * running the same item offline (`vsmooth client --local`).
 */

#ifndef VSMOOTH_SERVE_BATCH_HH
#define VSMOOTH_SERVE_BATCH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/result.hh"
#include "simtest/gen.hh"

namespace vsmooth::serve {

/** One parsed batch item. */
struct BatchItem
{
    /** Client-chosen tag echoed back in responses (defaults to the
     *  item's index in the batch). */
    std::string id;
    std::string kind = "summary";
    /** Scenario for summary/population/fuzz kinds. */
    simtest::FuzzConfig cfg;

    // --- population --------------------------------------------------
    /** Number of index-seeded runs merged into the CDF. */
    std::uint64_t population = 8;

    // --- oracle_cell -------------------------------------------------
    std::string benchA;
    std::string benchB;
    std::uint64_t cyclesPerPair = 60'000;
    double decapFraction = 1.0;
    std::uint64_t oracleSeed = 12345;

    // --- fuzz --------------------------------------------------------
    /** Property names to check (empty = whole registry). */
    std::vector<std::string> properties;

    // --- fault_sweep -------------------------------------------------
    /** Margins the fault rig is swept across (descending default
     *  covers safe down to deep undervolt). */
    std::vector<double> faultMargins{0.05, 0.04, 0.03, 0.02, 0.01};

    /**
     * Parse one item from a batch request. Unknown kinds, invalid
     * configs, unknown benchmark or property names all fail here with
     * a message — a bad item must become a structured error response,
     * never take down the daemon inside the executor.
     */
    static bool fromJson(const Json &j, BatchItem &out,
                         std::string *error);

    /**
     * Canonical cache key: the kind plus every parameter that affects
     * the Result, serialized without default omission in fixed field
     * order. Two requests describing the same scenario produce the
     * same key regardless of request-JSON field order or spelled-out
     * defaults. The item id is deliberately excluded.
     *
     * Serialized once per item and memoized: lookup, hashing, the
     * executor's cache insert, and logging all reuse the same bytes
     * instead of re-walking the config JSON. Not thread-safe on first
     * call — callers populate it on the submission thread before the
     * item is shared with executor tasks (the fields are const
     * thereafter, so later concurrent reads are safe).
     */
    const std::string &canonicalKey() const;

  private:
    /** Lazily built canonicalKey() bytes ("" = not built yet; no
     *  valid key is empty — every key at least carries the kind). */
    mutable std::string canonicalKey_;
};

/** Execute one item. Deterministic: equal canonicalKey() implies
 *  bit-identical serialized Result. */
Result runBatchItem(const BatchItem &item);

/** Serialized form used for responses and cache payloads (compact,
 *  single line — NDJSON-safe). */
std::string serializeResult(const Result &r);

} // namespace vsmooth::serve

#endif // VSMOOTH_SERVE_BATCH_HH
