/**
 * @file
 * Bounded work queue with explicit backpressure and drain semantics.
 *
 * The daemon never buffers unboundedly: when the queue is full, the
 * submitting connection gets an immediate `busy` response (retryable)
 * instead of the request silently piling up. On drain (SIGTERM or a
 * `shutdown` request) the queue stops accepting work, every task that
 * was queued but not yet started is rejected through its reject
 * callback (so the client hears a retryable status, not a dropped
 * connection), and in-flight tasks run to completion.
 */

#ifndef VSMOOTH_SERVE_QUEUE_HH
#define VSMOOTH_SERVE_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>

namespace vsmooth::serve {

/** One queued unit of work. Exactly one of run/reject is invoked. */
struct Task
{
    std::function<void()> run;
    /** Called instead of run when the queue drains before dispatch. */
    std::function<void()> reject;
};

class TaskQueue
{
  public:
    explicit TaskQueue(std::size_t capacity) : capacity_(capacity) {}

    TaskQueue(const TaskQueue &) = delete;
    TaskQueue &operator=(const TaskQueue &) = delete;

    enum class Push { Accepted, Busy, Draining };

    /** Non-blocking submit: Busy when full, Draining after
     *  beginDrain. The task's callbacks are only retained on
     *  Accepted. */
    Push push(Task task);

    /**
     * Blocking worker dequeue. Returns false when the queue is
     * draining and empty — the worker should exit. While a popped
     * task runs it counts as in flight; call taskDone() after it.
     */
    bool pop(Task *out);
    void taskDone();

    /**
     * Stop accepting work and reject everything still queued (their
     * reject callbacks run on the calling thread, in queue order).
     * Idempotent. Does not wait — use awaitIdle() for that.
     */
    void beginDrain();

    /** Block until every in-flight task has called taskDone(). Only
     *  meaningful after beginDrain(). */
    void awaitIdle();

    std::size_t depth() const;
    bool draining() const;

  private:
    mutable std::mutex m_;
    std::condition_variable cv_;     // work available / draining
    std::condition_variable idleCv_; // in-flight count reached zero
    std::size_t capacity_;
    std::deque<Task> tasks_;
    std::size_t inFlight_ = 0;
    bool draining_ = false;
};

} // namespace vsmooth::serve

#endif // VSMOOTH_SERVE_QUEUE_HH
