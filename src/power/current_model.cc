#include "current_model.hh"

#include "common/logging.hh"
#include "common/simd.hh"
#include "dsp/primitives.hh"

namespace vsmooth::power {

CurrentModel::CurrentModel(const CurrentModelParams &params)
    : params_(params), previous_(steadyCurrent(0.0))
{
    if (params_.leakage.value() < 0.0 || params_.idleClock.value() < 0.0 ||
        params_.dynamicMax.value() < 0.0) {
        fatal("CurrentModel: current components must be non-negative");
    }
}

double
CurrentModel::steadyCurrent(double activity) const
{
    // Restart bursts can briefly exceed the steady-state activity
    // ceiling (in-rush above sustained max); the map allows that
    // headroom and models clock gating — see
    // dsp::activityToCurrentSample for the (branchless) arithmetic.
    return dsp::activityToCurrentSample(activity,
                                        params_.leakage.value(),
                                        params_.idleClock.value(),
                                        params_.dynamicMax.value());
}

double
CurrentModel::currentFor(double activity)
{
    const double alpha = 1.0 / (1.0 + params_.smoothingTauCycles);
    return dsp::smoothSlewSample(previous_, steadyCurrent(activity),
                                 params_.smoothingTauCycles, alpha,
                                 params_.maxSlewPerCycle);
}

void
CurrentModel::accumulateBlock(const double *activity, double *totalAmps,
                              std::size_t n)
{
    BlockCursor c = cursor();
    for (std::size_t j = 0; j < n; ++j)
        totalAmps[j] += c.step(activity[j]);
    commit(c);
}

void
CurrentModel::steadyBlock(const double *activity, double *steady,
                          std::size_t n) const
{
    const double leak = params_.leakage.value();
    const double idleClk = params_.idleClock.value();
    const double dynMax = params_.dynamicMax.value();
    // The AVX2 build registers a 4-wide version of exactly this
    // arithmetic (same operations, same order); levels below that
    // fall through to the dsp map's built-in SSE2/scalar loops, which
    // already are the reference.
    if (const simd::SteadyFn kernel = simd::kernels().steady) {
        kernel(leak, idleClk, dynMax, activity, steady, n);
        return;
    }
    dsp::ActivityMap{leak, idleClk, dynMax}.processBlock(activity,
                                                         steady, n);
}

void
CurrentModel::reset(double activity)
{
    previous_ = steadyCurrent(activity);
}

} // namespace vsmooth::power
