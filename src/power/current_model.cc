#include "current_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vsmooth::power {

CurrentModel::CurrentModel(const CurrentModelParams &params)
    : params_(params), previous_(steadyCurrent(0.0))
{
    if (params_.leakage.value() < 0.0 || params_.idleClock.value() < 0.0 ||
        params_.dynamicMax.value() < 0.0) {
        fatal("CurrentModel: current components must be non-negative");
    }
}

double
CurrentModel::steadyCurrent(double activity) const
{
    // Restart bursts can briefly exceed the steady-state activity
    // ceiling (in-rush above sustained max); allow headroom for them.
    const double a = std::clamp(activity, 0.0, 2.5);
    // Clock-gating: the clock tree current shrinks as units gate off;
    // a small floor remains for the always-on spine.
    const double clock_current =
        params_.idleClock.value() * (0.25 + 0.75 * std::min(a, 1.0));
    return params_.leakage.value() + clock_current +
        params_.dynamicMax.value() * a;
}

double
CurrentModel::currentFor(double activity)
{
    double target = steadyCurrent(activity);
    if (params_.smoothingTauCycles > 0.0) {
        const double alpha = 1.0 / (1.0 + params_.smoothingTauCycles);
        target = previous_ + alpha * (target - previous_);
    }
    if (params_.maxSlewPerCycle > 0.0) {
        const double delta = target - previous_;
        const double limited =
            std::clamp(delta, -params_.maxSlewPerCycle,
                       params_.maxSlewPerCycle);
        target = previous_ + limited;
    }
    previous_ = target;
    return target;
}

void
CurrentModel::reset(double activity)
{
    previous_ = steadyCurrent(activity);
}

} // namespace vsmooth::power
