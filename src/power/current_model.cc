#include "current_model.hh"

#include <algorithm>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "common/logging.hh"
#include "common/simd.hh"

namespace vsmooth::power {

CurrentModel::CurrentModel(const CurrentModelParams &params)
    : params_(params), previous_(steadyCurrent(0.0))
{
    if (params_.leakage.value() < 0.0 || params_.idleClock.value() < 0.0 ||
        params_.dynamicMax.value() < 0.0) {
        fatal("CurrentModel: current components must be non-negative");
    }
}

double
CurrentModel::steadyCurrent(double activity) const
{
    // Restart bursts can briefly exceed the steady-state activity
    // ceiling (in-rush above sustained max); allow headroom. min/max
    // composition rather than std::clamp: it compiles branchless
    // (minsd/maxsd), which lets steadyBlock's elementwise loop
    // vectorize.
    const double a = std::min(std::max(activity, 0.0), 2.5);
    // Clock-gating: the clock tree current shrinks as units gate
    // off; a small floor remains for the always-on spine.
    const double clock_current =
        params_.idleClock.value() *
        (0.25 + 0.75 * std::min(a, 1.0));
    return params_.leakage.value() + clock_current +
        params_.dynamicMax.value() * a;
}

double
CurrentModel::currentFor(double activity)
{
    double target = steadyCurrent(activity);
    if (params_.smoothingTauCycles > 0.0) {
        const double alpha = 1.0 / (1.0 + params_.smoothingTauCycles);
        target = previous_ + alpha * (target - previous_);
    }
    if (params_.maxSlewPerCycle > 0.0) {
        const double delta = target - previous_;
        const double limited =
            std::clamp(delta, -params_.maxSlewPerCycle,
                       params_.maxSlewPerCycle);
        target = previous_ + limited;
    }
    previous_ = target;
    return target;
}

void
CurrentModel::accumulateBlock(const double *activity, double *totalAmps,
                              std::size_t n)
{
    BlockCursor c = cursor();
    for (std::size_t j = 0; j < n; ++j)
        totalAmps[j] += c.step(activity[j]);
    commit(c);
}

void
CurrentModel::steadyBlock(const double *activity, double *steady,
                          std::size_t n) const
{
    const double leak = params_.leakage.value();
    const double idleClk = params_.idleClock.value();
    const double dynMax = params_.dynamicMax.value();
    // The AVX2 build registers a 4-wide version of exactly this
    // arithmetic (same operations, same order); levels below that fall
    // through to the built-in SSE2/scalar loops, which already are the
    // reference.
    if (const simd::SteadyFn kernel = simd::kernels().steady) {
        kernel(leak, idleClk, dynMax, activity, steady, n);
        return;
    }
    std::size_t j = 0;
#if defined(__SSE2__)
    // Two lanes at a time with packed min/max: the compiler keeps the
    // scalar loop branchy (it specializes the clamp comparisons), so
    // the select is spelled out as maxpd/minpd. Each SIMD lane
    // performs the same IEEE operations in the same order as the
    // scalar loop below; activities are finite, so the min/max
    // NaN-operand convention never comes into play, and clamping
    // -0.0 to +0.0 is absorbed bit-exactly by the additions.
    const __m128d vZero = _mm_setzero_pd();
    const __m128d vCeil = _mm_set1_pd(2.5);
    const __m128d vOne = _mm_set1_pd(1.0);
    const __m128d vQuarter = _mm_set1_pd(0.25);
    const __m128d vThreeQ = _mm_set1_pd(0.75);
    const __m128d vLeak = _mm_set1_pd(leak);
    const __m128d vIdle = _mm_set1_pd(idleClk);
    const __m128d vDyn = _mm_set1_pd(dynMax);
    for (; j + 2 <= n; j += 2) {
        __m128d a = _mm_loadu_pd(activity + j);
        a = _mm_min_pd(_mm_max_pd(a, vZero), vCeil);
        const __m128d w = _mm_min_pd(a, vOne);
        const __m128d clock = _mm_mul_pd(
            vIdle, _mm_add_pd(vQuarter, _mm_mul_pd(vThreeQ, w)));
        const __m128d s = _mm_add_pd(_mm_add_pd(vLeak, clock),
                                     _mm_mul_pd(vDyn, a));
        _mm_storeu_pd(steady + j, s);
    }
#endif
    for (; j < n; ++j) {
        double a = activity[j];
        a = a < 0.0 ? 0.0 : a;
        a = 2.5 < a ? 2.5 : a;
        const double w = 1.0 < a ? 1.0 : a;
        const double clock_current = idleClk * (0.25 + 0.75 * w);
        steady[j] = leak + clock_current + dynMax * a;
    }
}

void
CurrentModel::reset(double activity)
{
    previous_ = steadyCurrent(activity);
}

} // namespace vsmooth::power
