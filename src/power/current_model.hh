/**
 * @file
 * Activity-to-current translation (Tiwari-style instruction-level
 * power, paper Sec II-A cites [23]).
 *
 * Per-core current has three components:
 *   - leakage: always drawn, independent of clocking
 *   - idle clock: clock-tree and always-on logic while the core is
 *     powered (reduced by clock gating when activity collapses)
 *   - dynamic: proportional to the activity level from the core model
 *
 * An optional slew limit bounds per-cycle di/dt (current cannot change
 * instantaneously through the on-die distribution); disabling it is an
 * ablation knob (bench/ablation_clock_gating).
 */

#ifndef VSMOOTH_POWER_CURRENT_MODEL_HH
#define VSMOOTH_POWER_CURRENT_MODEL_HH

#include <cstddef>

#include "common/units.hh"
#include "dsp/primitives.hh"

namespace vsmooth::power {

/** Electrical parameters of one core's current draw. */
struct CurrentModelParams
{
    /** Leakage current, always present. */
    Amps leakage{3.0};
    /**
     * Clock-distribution current with gating fully open; scales down
     * with activity as units gate off.
     */
    Amps idleClock{1.5};
    /**
     * Additional dynamic current at activity = 1.0. This is the
     * *noise-effective* di/dt swing of one core's stallable units —
     * smaller than the TDP current because caches, uncore, and the
     * unstalled units keep drawing through an event.
     */
    Amps dynamicMax{4.2};
    /**
     * Maximum current change per cycle (A/cycle). Zero or negative
     * disables slew limiting.
     */
    double maxSlewPerCycle = 0.0;
    /**
     * First-order smoothing time constant in cycles (0 disables).
     * Models the finite drain/refill time of the pipeline's current:
     * activity edges take ~tau cycles to reach the power grid, which
     * attenuates excitation of higher-frequency PDN resonances — the
     * reason workload noise grows more slowly than the raw sqrt(L/C)
     * impedance scaling when decap is removed (Fig 9 vs Fig 6).
     */
    double smoothingTauCycles = 2.0;
};

/** Converts a core's per-cycle activity into supply current. */
class CurrentModel
{
  public:
    explicit CurrentModel(const CurrentModelParams &params = {});

    /**
     * Current for one cycle at the given activity level; applies slew
     * limiting against the previous cycle's output.
     */
    double currentFor(double activity);

    /**
     * Hoisted per-sample kernel for batched execution: the model
     * parameters and the smoothing/slew state as plain values, so a
     * caller can keep the loop-carried `prev` chain in a register
     * across a whole block (and overlap it with other stages'
     * chains). step() performs exactly currentFor()'s arithmetic;
     * commit() writes the state back. alpha is 1/(1+tau), the same
     * expression currentFor evaluates, so the value is identical.
     */
    struct BlockCursor
    {
        double prev;
        double tau;
        double alpha;
        double slew;
        double leak;
        double idleClk;
        double dynMax;

        double step(double activity)
        {
            return smooth(dsp::activityToCurrentSample(activity, leak,
                                                       idleClk, dynMax));
        }

        /**
         * The smoothing/slew tail of step() alone, for callers that
         * have already run the elementwise steady-current conversion
         * over a whole lane (steadyBlock): only this part carries
         * state from sample to sample. Delegates to the dsp fused
         * chain kernel — the ONE implementation of this recurrence
         * (dsp/primitives.hh).
         */
        double smooth(double target)
        {
            return dsp::smoothSlewSample(prev, target, tau, alpha, slew);
        }
    };

    BlockCursor cursor() const
    {
        return BlockCursor{previous_,
                           params_.smoothingTauCycles,
                           1.0 / (1.0 + params_.smoothingTauCycles),
                           params_.maxSlewPerCycle,
                           params_.leakage.value(),
                           params_.idleClock.value(),
                           params_.dynamicMax.value()};
    }

    void commit(const BlockCursor &c) { previous_ = c.prev; }

    /**
     * Convert a block of per-cycle activity levels to amps and add
     * them onto the running per-cycle chip totals. Same per-cycle
     * arithmetic as currentFor() (via BlockCursor); the fused
     * accumulate keeps the chip total's summation order equal to the
     * scalar path's core-index-order additions.
     */
    void accumulateBlock(const double *activity, double *totalAmps,
                         std::size_t n);

    /**
     * Elementwise steadyCurrent() over a lane; no sample-to-sample
     * state, so the compiler can vectorize it (identical per-sample
     * arithmetic either way). In-place operation (steady == activity)
     * is allowed.
     */
    void steadyBlock(const double *activity, double *steady,
                     std::size_t n) const;

    /** Steady-state current at an activity level (no slew state). */
    double steadyCurrent(double activity) const;

    /** Current of a fully idle (but powered and clocked) core. */
    double idleCurrent() const { return steadyCurrent(0.12); }

    /** Maximum steady current (power-virus level). */
    double maxCurrent() const { return steadyCurrent(1.0); }

    /** Reset the slew-limiter state to a steady activity point. */
    void reset(double activity);

    const CurrentModelParams &params() const { return params_; }

  private:
    CurrentModelParams params_;
    double previous_;
};

} // namespace vsmooth::power

#endif // VSMOOTH_POWER_CURRENT_MODEL_HH
