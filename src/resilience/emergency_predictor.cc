#include "emergency_predictor.hh"

#include "common/logging.hh"

namespace vsmooth::resilience {

EmergencyPredictor::EmergencyPredictor(
    const EmergencyPredictorParams &params)
    : params_(params)
{
    if (params.tableBits == 0 || params.tableBits > 24)
        fatal("EmergencyPredictor: table bits %u outside (0,24]",
              params.tableBits);
    if (params.historyLength == 0)
        fatal("EmergencyPredictor: history length must be positive");
    confidence_.assign(std::size_t(1) << params.tableBits, 0);
    mask_ = (1u << params.tableBits) - 1;
}

std::uint32_t
EmergencyPredictor::index() const
{
    // Fibonacci-hash the rolling signature into the table.
    return static_cast<std::uint32_t>(
               (signature_ * 0x9e3779b97f4a7c15ULL) >> 40) &
        mask_;
}

void
EmergencyPredictor::observeEvent(std::size_t core, cpu::StallCause cause)
{
    // Fold (core, cause) into the rolling history; the shift width
    // bounds the effective history length.
    const auto token =
        static_cast<std::uint64_t>(cause) * 2 + (core & 1);
    const std::uint32_t bits_per_event = 4;
    const std::uint32_t window = params_.historyLength * bits_per_event;
    signature_ = ((signature_ << bits_per_event) | (token & 0xf)) &
        ((window >= 64) ? ~std::uint64_t(0)
                        : ((std::uint64_t(1) << window) - 1));

    // Prediction check on every event arrival (events, not cycles,
    // are the signature clock).
    if (confidence_[index()] >= params_.confidenceThreshold &&
        throttleLeft_ == 0) {
        throttleLeft_ = params_.throttleCycles;
        ++predictions_;
    }
}

void
EmergencyPredictor::observeEmergency()
{
    auto &ctr = confidence_[index()];
    if (ctr < 3)
        ++ctr;
    ++learned_;
}

bool
EmergencyPredictor::shouldThrottle()
{
    if (throttleLeft_ == 0)
        return false;
    --throttleLeft_;
    ++throttledCycles_;
    return true;
}

} // namespace vsmooth::resilience
