/**
 * @file
 * Resonance-aware throttling — the hardware mitigation baseline of
 * Powell & Vijaykumar ("exploiting resonant behavior to reduce
 * inductive noise", ISCA 2004 [18], and pipeline muffling [17]),
 * which the paper positions its software scheduler against.
 *
 * Mechanism: the dangerous supply oscillations build up over several
 * periods of the PDN resonance. The damper watches the die-voltage
 * deviation, estimates the amplitude of oscillation at the resonance
 * frequency, and when successive swings grow beyond a trigger level,
 * throttles execution for a few cycles to break the resonant pumping.
 */

#ifndef VSMOOTH_RESILIENCE_RESONANCE_DAMPER_HH
#define VSMOOTH_RESILIENCE_RESONANCE_DAMPER_HH

#include <cstdint>

#include "common/units.hh"
#include "dsp/primitives.hh"

namespace vsmooth::resilience {

/** Configuration of the resonance damper. */
struct ResonanceDamperParams
{
    /** Resonance period in cycles (platform-specific). */
    std::uint32_t resonancePeriodCycles = 24;
    /** Oscillation amplitude (fraction of nominal) that triggers. */
    double triggerAmplitude = 0.02;
    /**
     * Cycles of throttling per trigger. Must exceed the resonance
     * period: shorter windows turn the throttle itself into a
     * resonant square-wave stimulus.
     */
    std::uint32_t throttleCycles = 48;
};

/** Amplitude-tracking damper. */
class ResonanceDamper
{
  public:
    explicit ResonanceDamper(const ResonanceDamperParams &params = {});

    const ResonanceDamperParams &params() const { return params_; }

    /**
     * Feed the per-cycle voltage deviation; returns true if execution
     * should be throttled this cycle.
     */
    bool feed(double deviation);

    /** Number of throttle windows triggered. */
    std::uint64_t triggers() const { return triggers_; }
    /** Total throttled cycles. */
    std::uint64_t throttledCycles() const { return throttledCycles_; }
    /** Current oscillation-amplitude estimate. */
    double amplitudeEstimate() const { return amplitude_; }

  private:
    ResonanceDamperParams params_;
    /** Slow baseline tracker; alpha = 1/256 keeps its corner well
     *  below any plausible resonance frequency. */
    dsp::OnePoleSmoother meanTracker_{1.0 / 256.0, 0.0};
    double amplitude_ = 0.0;
    double halfPeriodMin_ = 0.0;
    double halfPeriodMax_ = 0.0;
    std::uint32_t phase_ = 0;
    std::uint32_t throttleLeft_ = 0;
    std::uint64_t triggers_ = 0;
    std::uint64_t throttledCycles_ = 0;
};

} // namespace vsmooth::resilience

#endif // VSMOOTH_RESILIENCE_RESONANCE_DAMPER_HH
