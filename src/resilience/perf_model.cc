#include "perf_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace vsmooth::resilience {

double
frequencyGain(double margin, double worstCaseMargin)
{
    if (margin < 0.0 || margin > worstCaseMargin)
        fatal("frequencyGain: margin %g outside [0, %g]", margin,
              worstCaseMargin);
    return kBowmanScale * (worstCaseMargin - margin);
}

double
EmergencyProfile::countAt(double margin) const
{
    if (margins.empty() || margins.size() != counts.size())
        panic("EmergencyProfile: inconsistent profile");
    if (margin <= margins.front())
        return static_cast<double>(counts.front());

    // A finite run censors the droop-depth tail: the measured counts
    // hit zero where the sample ran out, not where the physical tail
    // ends. Fit an exponential decay to the deepest margins that
    // still have statistics and extrapolate past them, so the
    // optimal-margin search cannot exploit the truncation.
    std::size_t last = margins.size();
    for (std::size_t i = margins.size(); i-- > 0;) {
        if (counts[i] >= 3) {
            last = i;
            break;
        }
    }
    if (last == margins.size())
        return 0.0; // nothing measured anywhere
    const double tail_start = margins[last];
    if (margin > tail_start) {
        // Decay rate from the deepest well-populated decade of the
        // measured profile (fallback: 10x per 1% of margin).
        double decade = 0.01;
        for (std::size_t i = last; i-- > 0;) {
            if (counts[i] >= 10 * counts[last] && counts[i] > 0) {
                decade = (tail_start - margins[i]) /
                    (std::log10(static_cast<double>(counts[i])) -
                     std::log10(static_cast<double>(counts[last])));
                break;
            }
        }
        return static_cast<double>(counts[last]) *
            std::pow(10.0, -(margin - tail_start) / decade);
    }

    for (std::size_t i = 1; i < margins.size(); ++i) {
        if (margin <= margins[i]) {
            const double frac =
                (margin - margins[i - 1]) / (margins[i] - margins[i - 1]);
            // Counts fall off roughly exponentially with margin, so
            // interpolate in log space (with +1 to tolerate zeros).
            const double lo =
                std::log1p(static_cast<double>(counts[i - 1]));
            const double hi = std::log1p(static_cast<double>(counts[i]));
            return std::expm1(lo + frac * (hi - lo));
        }
    }
    return static_cast<double>(counts.back());
}

void
EmergencyProfile::merge(const EmergencyProfile &other)
{
    if (margins.empty()) {
        *this = other;
        return;
    }
    if (other.margins != margins)
        panic("EmergencyProfile::merge: margin sweeps differ");
    for (std::size_t i = 0; i < counts.size(); ++i)
        counts[i] += other.counts[i];
    cycles += other.cycles;
}

EmergencyProfile
EmergencyProfile::scaled(double factor) const
{
    EmergencyProfile out = *this;
    for (auto &c : out.counts)
        c = static_cast<std::uint64_t>(
            std::llround(static_cast<double>(c) * factor));
    out.cycles = static_cast<Cycles>(
        std::llround(static_cast<double>(cycles) * factor));
    return out;
}

EmergencyProfile
profileFromBank(const noise::DroopDetectorBank &bank, Cycles cycles)
{
    EmergencyProfile profile;
    profile.cycles = cycles;
    for (std::size_t i = 0; i < bank.size(); ++i) {
        profile.margins.push_back(bank.marginAt(i));
        profile.counts.push_back(bank.eventCountAt(i));
    }
    return profile;
}

double
improvementPercent(const EmergencyProfile &profile, double margin,
                   std::uint32_t recoveryCost, double worstCaseMargin)
{
    if (profile.cycles == 0)
        fatal("improvementPercent: empty profile");
    const double gain = frequencyGain(margin, worstCaseMargin);
    const double recovery_cycles =
        static_cast<double>(recoveryCost) * profile.countAt(margin);
    const double slowdown =
        1.0 + recovery_cycles / static_cast<double>(profile.cycles);
    return 100.0 * ((1.0 + gain) / slowdown - 1.0);
}

OptimalMargin
optimalMargin(const EmergencyProfile &profile, std::uint32_t recoveryCost,
              double worstCaseMargin)
{
    OptimalMargin best;
    best.margin = worstCaseMargin;
    best.improvementPercent = 0.0;
    for (double m : profile.margins) {
        if (m > worstCaseMargin)
            continue;
        const double imp =
            improvementPercent(profile, m, recoveryCost, worstCaseMargin);
        if (imp > best.improvementPercent) {
            best.margin = m;
            best.improvementPercent = imp;
        }
    }
    return best;
}

Heatmap
improvementHeatmap(const EmergencyProfile &profile,
                   const std::vector<std::uint32_t> &costs,
                   double worstCaseMargin)
{
    Heatmap map;
    map.costs = costs;
    for (double m : profile.margins) {
        if (m <= worstCaseMargin)
            map.margins.push_back(m);
    }
    for (std::uint32_t cost : costs) {
        std::vector<double> row;
        row.reserve(map.margins.size());
        for (double m : map.margins)
            row.push_back(
                improvementPercent(profile, m, cost, worstCaseMargin));
        map.improvement.push_back(std::move(row));
    }
    return map;
}

} // namespace vsmooth::resilience
