#include "resonance_damper.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vsmooth::resilience {

ResonanceDamper::ResonanceDamper(const ResonanceDamperParams &params)
    : params_(params)
{
    if (params.resonancePeriodCycles < 4)
        fatal("ResonanceDamper: resonance period must be >= 4 cycles");
    if (params.triggerAmplitude <= 0.0)
        fatal("ResonanceDamper: trigger amplitude must be positive");
}

bool
ResonanceDamper::feed(double deviation)
{
    // Slow mean tracker (well below the resonance frequency): a
    // one-pole smoother with alpha = 1/256. The multiply form is
    // bit-identical to the old `mean_ += (deviation - mean_) / 256.0`
    // — scaling by an exact power of two rounds the same either way.
    const double mean = meanTracker_.sample(deviation);

    // Track min/max over half a resonance period; their spread is the
    // oscillation amplitude at (roughly) the resonance frequency.
    const double centered = deviation - mean;
    halfPeriodMin_ = std::min(halfPeriodMin_, centered);
    halfPeriodMax_ = std::max(halfPeriodMax_, centered);
    if (++phase_ >= params_.resonancePeriodCycles / 2) {
        amplitude_ = halfPeriodMax_ - halfPeriodMin_;
        halfPeriodMin_ = 0.0;
        halfPeriodMax_ = 0.0;
        phase_ = 0;
        if (amplitude_ > params_.triggerAmplitude &&
            throttleLeft_ == 0) {
            throttleLeft_ = params_.throttleCycles;
            ++triggers_;
        }
    }

    if (throttleLeft_ > 0) {
        --throttleLeft_;
        ++throttledCycles_;
        return true;
    }
    return false;
}

} // namespace vsmooth::resilience
