/**
 * @file
 * Closed-loop adaptive voltage-margin controller.
 *
 * The paper's co-scheduling policies exist so processors can run
 * thinner margins safely; this controller closes that loop in the
 * style of Kerrison & Eder (arXiv 1503.05733): a ring-oscillator
 * sensor (tech::RingOscillator) is read once per OS tick, and a
 * guard-banded PI step trims the operating margin toward the thinnest
 * level the observed noise supports. Two safety mechanisms bound the
 * trim: the margin saturates at configured [min, max] bounds, and any
 * droop that violates the *current* margin immediately widens it and
 * resets the integrator (droop evidence overrides accumulated trim
 * pressure).
 *
 * Violation detection reuses the exact hysteresis of
 * noise::DroopDetector — an event starts when the deviation falls
 * below -margin and ends when it recovers above the release level
 * captured at event start — so a controller with zero gains and zero
 * widen step is bit-identical to the fixed-margin emergency engine at
 * the same margin. That identity is what the differential tests and
 * the adaptive_margin_invariants fuzz property pin.
 */

#ifndef VSMOOTH_RESILIENCE_MARGIN_CONTROLLER_HH
#define VSMOOTH_RESILIENCE_MARGIN_CONTROLLER_HH

#include <cstdint>

#include "common/units.hh"
#include "tech/ring_oscillator.hh"

namespace vsmooth::resilience {

/** Configuration of the adaptive margin controller. */
struct MarginControllerParams
{
    /** Margin the controller starts (and saturates) from. */
    double initialMargin = 0.08;
    /** Lower saturation bound of the trimmed margin. */
    double minMargin = 0.02;
    /** Upper saturation bound (droop widening stops here). */
    double maxMargin = 0.14;
    /**
     * Ring-oscillator delay slack (fraction of nominal frequency) the
     * controller holds between the worst supply level seen in the
     * update window and the critical level at the current margin. The
     * guard band: larger values leave more headroom and settle wider.
     */
    double targetSlack = 0.01;
    /** Proportional gain on the slack error, in margin per unit slack. */
    double kp = 0.5;
    /** Integral gain on the accumulated slack error. */
    double ki = 0.05;
    /** Margin added immediately when a droop violates the margin
     *  (0 disables droop-triggered widening). */
    double widenStep = 0.01;
    /**
     * Cycles between PI updates. 0 means "resolve to the system OS
     * tick interval" — sim::System substitutes its own cadence; direct
     * users must pass a nonzero interval.
     */
    Cycles updateInterval = 0;
    /** Event ends when deviation rises above -margin * releaseFactor
     *  (must match noise::DroopDetector for the zero-gain identity). */
    double releaseFactor = 0.9;
    /** Ring-oscillator sensor: threshold voltage and alpha exponent. */
    Volts roVth = Volts(0.35);
    double roAlpha = 1.4;
};

/**
 * Complete controller state for save/restore. Restoring a snapshot
 * and replaying the same deviation stream reproduces the original
 * trajectory bit for bit.
 */
struct MarginControllerState
{
    double margin = 0.0;
    double integral = 0.0;
    double windowWorstDev = 0.0;
    Cycles updateCountdown = 0;
    bool inViolation = false;
    double violationRelease = 0.0;
    double eventDepth = 0.0;
    double deepestViolation = 0.0;
    double marginCycleSum = 0.0;
    Cycles cyclesObserved = 0;
    double minMarginSeen = 0.0;
    double maxMarginSeen = 0.0;
    double lastSlack = 0.0;
    std::uint64_t updates = 0;
    std::uint64_t widenings = 0;
};

/** Guard-banded PI margin controller with droop-triggered widening. */
class MarginController
{
  public:
    /**
     * @param params control law; updateInterval must be nonzero
     * @param vddNominal nominal supply the RO sensor calibrates
     *        against (deviations are fractions of this)
     */
    MarginController(const MarginControllerParams &params, Volts vddNominal);

    const MarginControllerParams &params() const { return params_; }

    /**
     * Feed one per-cycle voltage deviation (signed fraction of
     * nominal).
     * @return true if a new margin violation starts on this sample —
     *         the caller should treat it exactly like a fixed-margin
     *         emergency (recovery stall + emergency count)
     */
    bool
    feed(double deviation)
    {
        marginCycleSum_ += margin_;
        ++cyclesObserved_;
        if (deviation < windowWorstDev_)
            windowWorstDev_ = deviation;

        bool started = false;
        if (inViolation_) {
            if (deviation < eventDepth_)
                eventDepth_ = deviation;
            if (deviation > violationRelease_) {
                inViolation_ = false;
                deepestViolation_ = eventDepth_ < deepestViolation_
                                        ? eventDepth_
                                        : deepestViolation_;
            }
        } else if (deviation < -margin_) {
            inViolation_ = true;
            eventDepth_ = deviation;
            ++widenings_;
            widen();
            violationRelease_ = -margin_ * params_.releaseFactor;
            started = true;
        }

        if (--updateCountdown_ == 0) {
            update();
            updateCountdown_ = params_.updateInterval;
        }
        return started;
    }

    /** Margin currently in force. */
    double margin() const { return margin_; }
    /** Time-weighted mean margin over every cycle fed so far. */
    double averageMargin() const
    {
        return cyclesObserved_ ? marginCycleSum_ / double(cyclesObserved_)
                               : margin_;
    }
    /** Thinnest / widest margin ever in force. */
    double minMarginSeen() const { return minMarginSeen_; }
    double maxMarginSeen() const { return maxMarginSeen_; }
    /** PI updates executed. */
    std::uint64_t updates() const { return updates_; }
    /** Droop-triggered widenings (= margin violations detected). */
    std::uint64_t widenings() const { return widenings_; }
    /** Deepest deviation of any completed violation (<= 0). */
    double deepestViolation() const { return deepestViolation_; }
    /** Slack error measured by the most recent PI update. */
    double lastSlack() const { return lastSlack_; }
    /** Integrator accumulator (for tests). */
    double integral() const { return integral_; }

    /** Snapshot / restore the complete dynamic state. */
    MarginControllerState state() const;
    void restore(const MarginControllerState &state);

  private:
    void update();
    void widen();
    void clampAndTrack();

    MarginControllerParams params_;
    tech::RingOscillator ro_;
    double vddNominal_;
    /** frequencyAt(vddNominal), hoisted: every slack reading divides
     *  by it. */
    double nominalFreq_;

    double margin_;
    double integral_ = 0.0;
    double windowWorstDev_ = 0.0;
    Cycles updateCountdown_;
    bool inViolation_ = false;
    double violationRelease_ = 0.0;
    double eventDepth_ = 0.0;
    double deepestViolation_ = 0.0;
    double marginCycleSum_ = 0.0;
    Cycles cyclesObserved_ = 0;
    double minMarginSeen_;
    double maxMarginSeen_;
    double lastSlack_ = 0.0;
    std::uint64_t updates_ = 0;
    std::uint64_t widenings_ = 0;
};

} // namespace vsmooth::resilience

#endif // VSMOOTH_RESILIENCE_MARGIN_CONTROLLER_HH
