/**
 * @file
 * Signature-based voltage-emergency predictor — the hardware baseline
 * of Reddi et al., HPCA 2009 [29], which the paper's performance
 * model cites as the 100-cycle recovery design point.
 *
 * The mechanism: emergencies are preceded by recurring microarchitec-
 * tural activity patterns (a flush right after a long-stall refill,
 * say). The predictor hashes the recent per-core stall-event history
 * into a *signature*; when an emergency occurs, the current signature
 * is inserted into a table. When a stored signature recurs, the
 * predictor fires and execution is throttled for a few cycles —
 * smoothing the current transient that would have caused the
 * emergency, at a small throughput cost.
 */

#ifndef VSMOOTH_RESILIENCE_EMERGENCY_PREDICTOR_HH
#define VSMOOTH_RESILIENCE_EMERGENCY_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "cpu/perf_counters.hh"

namespace vsmooth::resilience {

/** Configuration of the signature predictor. */
struct EmergencyPredictorParams
{
    /** log2 of the signature table size. */
    std::uint32_t tableBits = 12;
    /** Events of history folded into a signature. */
    std::uint32_t historyLength = 8;
    /** Cycles of throttling issued on a signature hit. */
    std::uint32_t throttleCycles = 24;
    /** Saturating-confidence threshold before the predictor fires. */
    std::uint8_t confidenceThreshold = 2;
};

/**
 * Per-chip signature predictor. Observes event starts from every
 * core, learns the signatures that precede emergencies, and requests
 * throttling when they recur.
 */
class EmergencyPredictor
{
  public:
    explicit EmergencyPredictor(const EmergencyPredictorParams &params = {});

    /**
     * Record that a stall event of `cause` began on `core` this
     * cycle. Folds the event into the rolling signature.
     */
    void observeEvent(std::size_t core, cpu::StallCause cause);

    /**
     * Called when the fail-safe detects an actual emergency: learns
     * the current signature.
     */
    void observeEmergency();

    /**
     * Per-cycle query: should the chip throttle this cycle? Counts
     * down an armed throttle window.
     */
    bool shouldThrottle();

    /** Predictor fired (throttle windows armed) so far. */
    std::uint64_t predictions() const { return predictions_; }
    /** Emergencies learned. */
    std::uint64_t learned() const { return learned_; }
    /** Cycles spent throttled. */
    std::uint64_t throttledCycles() const { return throttledCycles_; }

    const EmergencyPredictorParams &params() const { return params_; }

  private:
    std::uint32_t index() const;

    EmergencyPredictorParams params_;
    std::vector<std::uint8_t> confidence_;
    std::uint32_t mask_;
    std::uint64_t signature_ = 0;
    std::uint32_t throttleLeft_ = 0;
    std::uint64_t predictions_ = 0;
    std::uint64_t learned_ = 0;
    std::uint64_t throttledCycles_ = 0;
};

} // namespace vsmooth::resilience

#endif // VSMOOTH_RESILIENCE_EMERGENCY_PREDICTOR_HH
