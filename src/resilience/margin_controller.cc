#include "margin_controller.hh"

#include "common/logging.hh"

namespace vsmooth::resilience {

MarginController::MarginController(const MarginControllerParams &params,
                                   Volts vddNominal)
    : params_(params),
      ro_(params.roVth, params.roAlpha),
      vddNominal_(vddNominal.value()),
      margin_(params.initialMargin),
      updateCountdown_(params.updateInterval),
      minMarginSeen_(params.initialMargin),
      maxMarginSeen_(params.initialMargin)
{
    if (params_.updateInterval == 0)
        fatal("MarginController: updateInterval must be nonzero "
              "(sim::System resolves 0 to its OS tick)");
    if (!(params_.minMargin > 0.0 &&
          params_.minMargin <= params_.initialMargin &&
          params_.initialMargin <= params_.maxMargin)) {
        fatal("MarginController: need 0 < minMargin <= initialMargin "
              "<= maxMargin (got %g <= %g <= %g)", params_.minMargin,
              params_.initialMargin, params_.maxMargin);
    }
    if (params_.kp < 0.0 || params_.ki < 0.0)
        fatal("MarginController: gains must be non-negative");
    if (params_.widenStep < 0.0)
        fatal("MarginController: widenStep must be non-negative");
    if (params_.targetSlack < 0.0)
        fatal("MarginController: targetSlack must be non-negative");
    if (params_.releaseFactor < 0.0 || params_.releaseFactor >= 1.0)
        fatal("MarginController: releaseFactor must be in [0, 1)");
    nominalFreq_ = ro_.frequencyAt(vddNominal);
    if (!(nominalFreq_ > 0.0))
        fatal("MarginController: nominal supply %g V does not clear "
              "the sensor threshold %g V", vddNominal_,
              params_.roVth.value());
}

/**
 * One PI step at the update cadence. The sensor reading is the RO
 * frequency at the worst supply level seen since the last update; the
 * controlled quantity is its slack over the RO frequency at the
 * critical level vdd * (1 - margin), normalised by the nominal
 * frequency. Steady state holds slack == targetSlack, i.e. the margin
 * settles a guard band below the observed worst droop depth —
 * smoother workloads droop less and earn a thinner margin.
 */
void
MarginController::update()
{
    ++updates_;
    const double worst = windowWorstDev_;
    windowWorstDev_ = 0.0;
    const double fMeas = ro_.frequencyAt(Volts(vddNominal_ * (1.0 + worst)));
    const double fCrit = ro_.frequencyAt(Volts(vddNominal_ * (1.0 - margin_)));
    const double slack = (fMeas - fCrit) / nominalFreq_;
    lastSlack_ = slack;
    const double error = slack - params_.targetSlack;
    // Conditional integration (anti-windup): skip the accumulator when
    // the proposed step already drives the margin into a bound in the
    // error's own direction, so the integrator never charges against a
    // rail it cannot move past.
    const double proposed =
        margin_ - (params_.kp * error + params_.ki * (integral_ + error));
    const bool intoLowerRail = proposed < params_.minMargin && error > 0.0;
    const bool intoUpperRail = proposed > params_.maxMargin && error < 0.0;
    if (!intoLowerRail && !intoUpperRail)
        integral_ += error;
    margin_ -= params_.kp * error + params_.ki * integral_;
    clampAndTrack();
}

/** Droop-triggered widening: step the margin out and drop the
 *  integrator — the violation is direct evidence that its accumulated
 *  trim pressure was wrong. */
void
MarginController::widen()
{
    if (params_.widenStep > 0.0) {
        margin_ += params_.widenStep;
        integral_ = 0.0;
        clampAndTrack();
    }
}

void
MarginController::clampAndTrack()
{
    if (margin_ < params_.minMargin)
        margin_ = params_.minMargin;
    if (margin_ > params_.maxMargin)
        margin_ = params_.maxMargin;
    if (margin_ < minMarginSeen_)
        minMarginSeen_ = margin_;
    if (margin_ > maxMarginSeen_)
        maxMarginSeen_ = margin_;
}

MarginControllerState
MarginController::state() const
{
    MarginControllerState s;
    s.margin = margin_;
    s.integral = integral_;
    s.windowWorstDev = windowWorstDev_;
    s.updateCountdown = updateCountdown_;
    s.inViolation = inViolation_;
    s.violationRelease = violationRelease_;
    s.eventDepth = eventDepth_;
    s.deepestViolation = deepestViolation_;
    s.marginCycleSum = marginCycleSum_;
    s.cyclesObserved = cyclesObserved_;
    s.minMarginSeen = minMarginSeen_;
    s.maxMarginSeen = maxMarginSeen_;
    s.lastSlack = lastSlack_;
    s.updates = updates_;
    s.widenings = widenings_;
    return s;
}

void
MarginController::restore(const MarginControllerState &s)
{
    margin_ = s.margin;
    integral_ = s.integral;
    windowWorstDev_ = s.windowWorstDev;
    updateCountdown_ = s.updateCountdown;
    inViolation_ = s.inViolation;
    violationRelease_ = s.violationRelease;
    eventDepth_ = s.eventDepth;
    deepestViolation_ = s.deepestViolation;
    marginCycleSum_ = s.marginCycleSum;
    cyclesObserved_ = s.cyclesObserved;
    minMarginSeen_ = s.minMarginSeen;
    maxMarginSeen_ = s.maxMarginSeen;
    lastSlack_ = s.lastSlack;
    updates_ = s.updates;
    widenings_ = s.widenings;
}

} // namespace vsmooth::resilience
