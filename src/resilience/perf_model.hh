/**
 * @file
 * The typical-case (resilient) design performance model of Sec III-B.
 *
 * Tightening the operating voltage margin buys clock frequency
 * (Bowman et al.: 10 % margin -> 15 % frequency, the 1.5x factor) but
 * admits voltage emergencies, each of which costs a rollback/recovery
 * of `recoveryCost` cycles. Net improvement over the conservative
 * worst-case design (14 % margin on the Core 2 Duo) is
 *
 *   speedup(m, c) = (1 + gain(m)) / (1 + c * N(m) / cycles)
 *
 * where N(m) is the number of emergencies at margin m recorded from
 * the voltage trace. The model reproduces Fig 8 (improvement vs
 * margin per cost), Fig 10 (heatmaps), and Table I (optimal margins).
 */

#ifndef VSMOOTH_RESILIENCE_PERF_MODEL_HH
#define VSMOOTH_RESILIENCE_PERF_MODEL_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"
#include "noise/droop_detector.hh"

namespace vsmooth::resilience {

/**
 * Bowman et al. [5]: removing a 10 % voltage margin buys a 15 % clock
 * frequency improvement — the 1.5x factor of the paper's Sec III-B
 * performance model.
 */
constexpr double kBowmanScale = 1.5;

/**
 * Clock-frequency gain from tightening the margin, as a fraction
 * (Bowman scaling: kBowmanScale * margin removed).
 *
 * @param margin the aggressive margin (fraction of nominal)
 * @param worstCaseMargin the conservative baseline margin
 */
double frequencyGain(double margin, double worstCaseMargin = 0.14);

/** Emergency counts per watched margin over a measured run. */
struct EmergencyProfile
{
    /** Watched margins, ascending. */
    std::vector<double> margins;
    /** Emergency (droop event) count at each margin. */
    std::vector<std::uint64_t> counts;
    /** Cycles the profile was recorded over. */
    Cycles cycles = 0;

    /**
     * Emergency count at a margin; interpolated (log-linearly in
     * count) between watched margins, clamped at the ends.
     */
    double countAt(double margin) const;

    /** Merge another profile (same margins) into this one. */
    void merge(const EmergencyProfile &other);

    /** Scale counts and cycles by a factor (duration re-weighting). */
    EmergencyProfile scaled(double factor) const;
};

/** Build a profile from a detector bank after a run. */
EmergencyProfile profileFromBank(const noise::DroopDetectorBank &bank,
                                 Cycles cycles);

/**
 * Net performance improvement (percent) of running at `margin` with
 * a given recovery cost, relative to the worst-case design.
 */
double improvementPercent(const EmergencyProfile &profile, double margin,
                          std::uint32_t recoveryCost,
                          double worstCaseMargin = 0.14);

/** Result of an optimal-margin search. */
struct OptimalMargin
{
    double margin = 0.14;
    double improvementPercent = 0.0;
};

/**
 * Find the margin maximizing improvement for a recovery cost by
 * scanning the profile's watched margins.
 */
OptimalMargin optimalMargin(const EmergencyProfile &profile,
                            std::uint32_t recoveryCost,
                            double worstCaseMargin = 0.14);

/**
 * Improvement heatmap: rows = recovery costs, cols = margins (the
 * paper's Fig 10 panels).
 */
struct Heatmap
{
    std::vector<std::uint32_t> costs;
    std::vector<double> margins;
    /** improvement[cost index][margin index], percent. */
    std::vector<std::vector<double>> improvement;
};

Heatmap improvementHeatmap(const EmergencyProfile &profile,
                           const std::vector<std::uint32_t> &costs,
                           double worstCaseMargin = 0.14);

} // namespace vsmooth::resilience

#endif // VSMOOTH_RESILIENCE_PERF_MODEL_HH
