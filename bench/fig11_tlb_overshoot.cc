/**
 * @file
 * Fig 11: recurring voltage overshoots caused by TLB misses, riding
 * on the VRM switching ripple.
 *
 * The paper scopes the core voltage while the TLB microbenchmark
 * loops: every page-walk stall drops the current draw, so voltage
 * spikes above nominal at the event rate, embedded in the slower VRM
 * waveform. We print a short excerpt of the simulated waveform plus
 * the detected overshoot statistics.
 */

#include <iostream>
#include <memory>

#include "bench_util.hh"
#include "common/table.hh"
#include "cpu/detailed_core.hh"
#include "noise/droop_detector.hh"
#include "sim/system.hh"
#include "workload/microbench.hh"

using namespace vsmooth;

int
main()
{
    sim::SystemConfig cfg;
    sim::System sys(cfg);
    auto stream =
        workload::makeMicrobenchmark(workload::MicrobenchKind::TlbMiss, 7);
    sys.addCore(std::make_unique<cpu::DetailedCore>(
        cpu::DetailedCoreParams{}, *stream));
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::idleSchedule(1000), 43));

    // Warm up past the cold-start transient.
    sys.run(200'000);

    // Excerpt: average deviation over 50-cycle buckets for ~2 VRM
    // periods (compact ASCII rendering of the scope shot).
    TextTable excerpt("Fig 11: voltage waveform excerpt (TLB loop)");
    excerpt.setHeader({"t (cycles)", "mean dev (%)", ""});
    for (int bucket = 0; bucket < 60; ++bucket) {
        double sum = 0.0;
        for (int i = 0; i < 64; ++i) {
            sys.tick();
            sum += sys.deviation();
        }
        const double mean = sum / 64.0 * 100.0;
        const int bar = static_cast<int>((mean + 2.5) * 12.0);
        excerpt.addRow({TextTable::num(bucket * 64),
                        TextTable::num(mean, 2),
                        std::string(std::max(bar, 0), '#')});
    }
    excerpt.print(std::cout);

    // Overshoot event statistics over a long window: mirror-detect
    // spikes above +1.2 %.
    noise::DroopDetector overshoot(0.012);
    std::uint64_t cycles = 1'000'000;
    for (std::uint64_t i = 0; i < cycles; ++i) {
        sys.tick();
        overshoot.feed(-sys.deviation()); // mirrored: spikes up
    }
    const auto &ctr = sys.core(0).counters();
    const double tlb_per_1k =
        1000.0 *
        static_cast<double>(ctr.eventCount(cpu::StallCause::TlbMiss)) /
        static_cast<double>(ctr.cycles());
    const double overshoot_per_1k =
        1000.0 * static_cast<double>(overshoot.eventCount()) /
        static_cast<double>(cycles);
    std::cout << "\nTLB miss events/1K cycles: "
              << TextTable::num(tlb_per_1k, 2)
              << "\nOvershoot events/1K cycles (> +1.2%): "
              << TextTable::num(overshoot_per_1k, 2)
              << "\nPaper: recurring voltage spikes embedded in the"
                 " VRM ripple, one per TLB stall burst.\n";
    auto result = bench::makeResult("fig11_tlb_overshoot");
    result.metric("tlb_miss_per_1k_cycles", tlb_per_1k);
    result.metric("overshoot_per_1k_cycles", overshoot_per_1k);
    bench::emitResult(result);
    return 0;
}
