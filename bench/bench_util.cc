#include "bench_util.hh"

#include <algorithm>
#include <cstdlib>
#include <fstream>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/simd.hh"
#include "sim/lane_group.hh"

#ifndef VSMOOTH_GIT_DESCRIBE
#define VSMOOTH_GIT_DESCRIBE "unknown"
#endif

namespace vsmooth::bench {

RunResult
resultFrom(sim::System &sys)
{
    RunResult r;
    r.scope = sys.scope();
    r.emergencies =
        resilience::profileFromBank(sys.droopBank(), sys.cycles());
    r.stallRatio = sys.core(0).counters().stallRatio();
    r.ipc = sys.core(0).counters().ipc();
    if (sys.numCores() > 1)
        r.ipc += sys.core(1).counters().ipc();
    r.cycles = sys.cycles();
    return r;
}

namespace {

sim::System
makeSystem(double decapFraction)
{
    sim::SystemConfig cfg;
    cfg.package =
        pdn::PackageConfig::core2duo().withDecapFraction(decapFraction);
    cfg.osTickInterval = sim::kCompressedOsTick;
    return sim::System(cfg);
}

RunResult
runPrepared(PreparedRun &p)
{
    if (p.untilFinished) {
        p.sys.runUntilFinished(p.cycles);
        if (p.sys.cycles() < p.padTo)
            p.sys.run(p.padTo - p.sys.cycles());
    } else {
        p.sys.run(p.cycles);
    }
    return resultFrom(p.sys);
}

} // namespace

PreparedRun
prepareSingle(const workload::SpecBenchmark &bench, Cycles cycles,
              double decapFraction, std::uint64_t seed)
{
    PreparedRun p{makeSystem(decapFraction), cycles};
    p.sys.addCore(std::make_unique<cpu::FastCore>(
        workload::scheduleFor(bench, cycles, true), seed + 1));
    p.sys.addCore(std::make_unique<cpu::FastCore>(
        workload::idleSchedule(1000), seed + 2));
    return p;
}

PreparedRun
preparePair(const workload::SpecBenchmark &a,
            const workload::SpecBenchmark &b, Cycles cycles,
            double decapFraction, std::uint64_t seed)
{
    PreparedRun p{makeSystem(decapFraction), cycles};
    p.sys.addCore(std::make_unique<cpu::FastCore>(
        workload::scheduleFor(a, cycles, true), seed + 1));
    p.sys.addCore(std::make_unique<cpu::FastCore>(
        workload::scheduleFor(b, cycles, true), seed + 2));
    return p;
}

PreparedRun
prepareParsec(const workload::ParsecBenchmark &bench, Cycles cycles,
              double decapFraction, std::uint64_t seed)
{
    // PARSEC schedules are finite; pad to the nominal length so run
    // weights stay comparable.
    PreparedRun p{makeSystem(decapFraction), cycles, true, cycles};
    p.sys.addCore(std::make_unique<cpu::FastCore>(
        workload::parsecThreadSchedule(bench, 0, cycles), seed + 1));
    p.sys.addCore(std::make_unique<cpu::FastCore>(
        workload::parsecThreadSchedule(bench, 1, cycles), seed + 2));
    return p;
}

RunResult
runSingle(const workload::SpecBenchmark &bench, Cycles cycles,
          double decapFraction, std::uint64_t seed)
{
    PreparedRun p = prepareSingle(bench, cycles, decapFraction, seed);
    return runPrepared(p);
}

RunResult
runPair(const workload::SpecBenchmark &a, const workload::SpecBenchmark &b,
        Cycles cycles, double decapFraction, std::uint64_t seed)
{
    PreparedRun p = preparePair(a, b, cycles, decapFraction, seed);
    return runPrepared(p);
}

RunResult
runParsec(const workload::ParsecBenchmark &bench, Cycles cycles,
          double decapFraction, std::uint64_t seed)
{
    PreparedRun p = prepareParsec(bench, cycles, decapFraction, seed);
    return runPrepared(p);
}

void
runLanedSweep(
    std::size_t total,
    const std::function<PreparedRun(std::size_t)> &prepare,
    const std::function<void(std::size_t, sim::System &)> &extract)
{
    const std::size_t lanes = simd::defaultLaneWidth();
    const std::size_t nGroups = (total + lanes - 1) / lanes;
    parallelFor(0, nGroups, [&](std::size_t g) {
        const std::size_t begin = g * lanes;
        const std::size_t end = std::min(total, begin + lanes);
        std::vector<PreparedRun> prepared;
        prepared.reserve(end - begin);
        std::vector<sim::LanePlan> plans;
        plans.reserve(end - begin);
        for (std::size_t t = begin; t < end; ++t) {
            prepared.push_back(prepare(t));
            PreparedRun &p = prepared.back();
            sim::LanePlan plan;
            plan.system = &p.sys;
            plan.cycles = p.cycles;
            plan.untilFinished = p.untilFinished;
            plan.padTo = p.padTo;
            plans.push_back(plan);
        }
        sim::LaneGroup group(lanes);
        group.run(plans);
        for (std::size_t t = begin; t < end; ++t)
            extract(t, prepared[t - begin].sys);
    });
}

Population
runPopulation(Cycles cyclesPerRun, double decapFraction,
              std::uint64_t seed)
{
    Population pop;
    const auto &suite = workload::specCpu2006();
    const auto &parsec = workload::parsecSuite();
    const std::size_t nSingle = suite.size();
    const std::size_t nParsec = parsec.size();

    // Flat task list: singles, then PARSEC, then the unordered pairs,
    // in the historical serial order. Each task's seed derives from
    // its index (the same `s += 17` walk the serial loop produced),
    // so the population is bit-identical for any job count.
    std::vector<std::pair<std::size_t, std::size_t>> pairIdx;
    pairIdx.reserve(nSingle * (nSingle + 1) / 2);
    for (std::size_t i = 0; i < nSingle; ++i)
        for (std::size_t j = i; j < nSingle; ++j)
            pairIdx.emplace_back(i, j);
    const std::size_t total = nSingle + nParsec + pairIdx.size();
    auto seedFor = [seed](std::size_t t) {
        return seed + 17ULL * (t + 1);
    };

    std::vector<RunResult> results(total);
    std::vector<sim::SamplingReport> reports(total);
    runLanedSweep(
        total,
        [&](std::size_t t) {
            if (t < nSingle) {
                return prepareSingle(suite[t], cyclesPerRun,
                                     decapFraction, seedFor(t));
            }
            if (t < nSingle + nParsec) {
                return prepareParsec(parsec[t - nSingle], cyclesPerRun,
                                     decapFraction, seedFor(t));
            }
            const auto [i, j] = pairIdx[t - nSingle - nParsec];
            return preparePair(suite[i], suite[j], cyclesPerRun,
                               decapFraction, seedFor(t));
        },
        [&](std::size_t t, sim::System &sys) {
            results[t] = resultFrom(sys);
            reports[t] = sys.samplingReport();
        });

    // Merge after the join, in index order.
    for (const auto &r : results) {
        pop.scope.merge(r.scope);
        pop.emergencies.merge(r.emergencies);
        pop.tailFractions.push_back(r.scope.fractionBelow(-0.04));
        ++pop.runs;
    }
    for (const auto &rep : reports)
        pop.sampling.merge(rep);
    return pop;
}

Result
makeResult(std::string experiment, std::uint64_t seed)
{
    Result r(std::move(experiment));
    r.setSeed(seed);
    r.setJobs(numJobs());
    r.setGitDescribe(VSMOOTH_GIT_DESCRIBE);
    r.setSimd(simd::description());
    return r;
}

void
stampSampling(Result &r, const sim::SamplingReport &report,
              std::vector<std::pair<std::string, double>> bounds)
{
    if (!report.active)
        return;
    ResultSampling s;
    s.mode = "auto";
    s.simulatedFraction = report.simulatedFraction();
    s.bounds = std::move(bounds);
    r.setSampling(std::move(s));
}

void
emitResult(const Result &r)
{
    std::string path;
    if (const char *file = std::getenv("VSMOOTH_RESULT_FILE");
        file && *file) {
        path = file;
    } else if (const char *dir = std::getenv("VSMOOTH_RESULT_DIR");
               dir && *dir) {
        path = std::string(dir) + "/" + r.experiment() + ".json";
    } else {
        return;
    }
    std::ofstream out(path);
    if (!out)
        fatal("cannot write result file '%s'", path.c_str());
    r.toJson().write(out, 2);
    out << "\n";
    if (!out.good())
        fatal("error writing result file '%s'", path.c_str());
}

} // namespace vsmooth::bench
