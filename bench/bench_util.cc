#include "bench_util.hh"

namespace vsmooth::bench {

namespace {

RunResult
finish(sim::System &sys)
{
    RunResult r;
    r.scope = sys.scope();
    r.emergencies =
        resilience::profileFromBank(sys.droopBank(), sys.cycles());
    r.stallRatio = sys.core(0).counters().stallRatio();
    r.ipc = sys.core(0).counters().ipc();
    if (sys.numCores() > 1)
        r.ipc += sys.core(1).counters().ipc();
    r.cycles = sys.cycles();
    return r;
}

sim::System
makeSystem(double decapFraction)
{
    sim::SystemConfig cfg;
    cfg.package =
        pdn::PackageConfig::core2duo().withDecapFraction(decapFraction);
    cfg.osTickInterval = sim::kCompressedOsTick;
    return sim::System(cfg);
}

} // namespace

RunResult
runSingle(const workload::SpecBenchmark &bench, Cycles cycles,
          double decapFraction, std::uint64_t seed)
{
    sim::System sys = makeSystem(decapFraction);
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::scheduleFor(bench, cycles, true), seed + 1));
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::idleSchedule(1000), seed + 2));
    sys.run(cycles);
    return finish(sys);
}

RunResult
runPair(const workload::SpecBenchmark &a, const workload::SpecBenchmark &b,
        Cycles cycles, double decapFraction, std::uint64_t seed)
{
    sim::System sys = makeSystem(decapFraction);
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::scheduleFor(a, cycles, true), seed + 1));
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::scheduleFor(b, cycles, true), seed + 2));
    sys.run(cycles);
    return finish(sys);
}

RunResult
runParsec(const workload::ParsecBenchmark &bench, Cycles cycles,
          double decapFraction, std::uint64_t seed)
{
    sim::System sys = makeSystem(decapFraction);
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::parsecThreadSchedule(bench, 0, cycles), seed + 1));
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::parsecThreadSchedule(bench, 1, cycles), seed + 2));
    sys.runUntilFinished(cycles);
    // PARSEC schedules are finite; pad to the nominal length so run
    // weights stay comparable.
    if (sys.cycles() < cycles)
        sys.run(cycles - sys.cycles());
    return finish(sys);
}

Population
runPopulation(Cycles cyclesPerRun, double decapFraction,
              std::uint64_t seed)
{
    Population pop;
    const auto &suite = workload::specCpu2006();

    auto absorb = [&](const RunResult &r) {
        pop.scope.merge(r.scope);
        pop.emergencies.merge(r.emergencies);
        pop.tailFractions.push_back(r.scope.fractionBelow(-0.04));
        ++pop.runs;
    };

    std::uint64_t s = seed;
    for (const auto &b : suite)
        absorb(runSingle(b, cyclesPerRun, decapFraction, s += 17));
    for (const auto &b : workload::parsecSuite())
        absorb(runParsec(b, cyclesPerRun, decapFraction, s += 17));
    for (std::size_t i = 0; i < suite.size(); ++i) {
        for (std::size_t j = i; j < suite.size(); ++j) {
            absorb(runPair(suite[i], suite[j], cyclesPerRun,
                           decapFraction, s += 17));
        }
    }
    return pop;
}

} // namespace vsmooth::bench
