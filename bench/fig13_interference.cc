/**
 * @file
 * Fig 13: chip-wide peak-to-peak swing when both cores run event
 * microbenchmarks simultaneously — the 5x5 interference matrix,
 * relative to an idling machine.
 *
 * Paper headline: dual-core worst case 2.42x versus 1.7x single-core
 * (a 42 % increase); the magnitude depends strongly on the event
 * pairing (constructive vs destructive interference).
 */

#include <algorithm>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hh"
#include "common/parallel.hh"
#include "common/simd.hh"
#include "common/table.hh"
#include "cpu/detailed_core.hh"
#include "sim/lane_group.hh"
#include "sim/system.hh"
#include "workload/microbench.hh"

using namespace vsmooth;

namespace {

constexpr Cycles kSweepCycles = 1'500'000;

/**
 * One sweep cell: the system plus the microbenchmark streams it
 * references (DetailedCore does not own its instruction source, so
 * the cell keeps the streams alive for the lane group's lifetime).
 */
struct Cell
{
    std::unique_ptr<cpu::InstructionSource> s0, s1;
    sim::System sys{sim::SystemConfig{}};
};

Cell
prepareSingleCell(workload::MicrobenchKind a)
{
    Cell cell;
    cell.s0 = workload::makeMicrobenchmark(a, 7);
    cell.sys.addCore(std::make_unique<cpu::DetailedCore>(
        cpu::DetailedCoreParams{}, *cell.s0));
    cell.sys.addCore(std::make_unique<cpu::FastCore>(
        workload::idleSchedule(1000), 43));
    return cell;
}

Cell
preparePairCell(workload::MicrobenchKind a, workload::MicrobenchKind b)
{
    Cell cell;
    cell.s0 = workload::makeMicrobenchmark(a, 7);
    cell.s1 = workload::makeMicrobenchmark(b, 99);
    cell.sys.addCore(std::make_unique<cpu::DetailedCore>(
        cpu::DetailedCoreParams{}, *cell.s0));
    cell.sys.addCore(std::make_unique<cpu::DetailedCore>(
        cpu::DetailedCoreParams{}, *cell.s1));
    return cell;
}

/**
 * Drain `total` cells through the scenario-lane engine, K at a time
 * per worker, and return each cell's p2p swing relative to idle.
 */
template <class Prepare>
std::vector<double>
lanedP2pSweep(std::size_t total, Prepare prepare, double idle)
{
    std::vector<double> rel(total);
    const std::size_t lanes = simd::defaultLaneWidth();
    const std::size_t nGroups = (total + lanes - 1) / lanes;
    parallelFor(0, nGroups, [&](std::size_t g) {
        const std::size_t begin = g * lanes;
        const std::size_t end = std::min(total, begin + lanes);
        std::vector<Cell> cells;
        cells.reserve(end - begin);
        std::vector<sim::LanePlan> plans;
        plans.reserve(end - begin);
        for (std::size_t t = begin; t < end; ++t) {
            cells.push_back(prepare(t));
            sim::LanePlan plan;
            plan.system = &cells.back().sys;
            plan.cycles = kSweepCycles;
            plans.push_back(plan);
        }
        sim::LaneGroup group(lanes);
        group.run(plans);
        for (std::size_t t = begin; t < end; ++t) {
            rel[t] =
                cells[t - begin].sys.scope().visualPeakToPeak() / idle;
        }
    });
    return rel;
}

} // namespace

int
main()
{
    // Idle baseline.
    double idle;
    {
        sim::SystemConfig cfg;
        sim::System sys(cfg);
        sys.addCore(std::make_unique<cpu::FastCore>(
            workload::idleSchedule(1000), 42));
        sys.addCore(std::make_unique<cpu::FastCore>(
            workload::idleSchedule(1000), 43));
        sys.run(1'500'000);
        idle = sys.scope().visualPeakToPeak();
    }

    const auto &kinds = workload::kEventMicrobenchmarks;
    const std::size_t nk = kinds.size();

    // Single-core max (for the +42 % comparison); every cell is an
    // independent simulation, so the sweeps fan out over the pool
    // and each worker steps K cells in SIMD lockstep.
    const auto singles = lanedP2pSweep(
        nk, [&](std::size_t k) { return prepareSingleCell(kinds[k]); },
        idle);
    const double single_max =
        *std::max_element(singles.begin(), singles.end());

    // The 5x5 dual-core interference grid, row-major.
    const auto grid = lanedP2pSweep(
        nk * nk,
        [&](std::size_t t) {
            return preparePairCell(kinds[t / nk], kinds[t % nk]);
        },
        idle);

    TextTable table(
        "Fig 13: dual-core p2p swing relative to idle (Core0 x Core1)");
    std::vector<std::string> header = {"Core0 \\ Core1"};
    for (auto k : kinds)
        header.emplace_back(workload::microbenchName(k));
    table.setHeader(header);

    double pair_max = 0.0;
    for (std::size_t r = 0; r < nk; ++r) {
        std::vector<std::string> row = {
            std::string(workload::microbenchName(kinds[r]))};
        for (std::size_t c = 0; c < nk; ++c) {
            const double rel = grid[r * nk + c];
            pair_max = std::max(pair_max, rel);
            row.push_back(TextTable::num(rel, 2));
        }
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout << "\nSingle-core max: " << TextTable::num(single_max, 2)
              << "x   dual-core max: " << TextTable::num(pair_max, 2)
              << "x   increase: "
              << TextTable::num((pair_max / single_max - 1.0) * 100, 0)
              << "%\nPaper: 1.7x single vs 2.42x dual (+42%), worst"
                 " case when both cores run the same heavyweight"
                 " event.\n";
    auto result = bench::makeResult("fig13_interference");
    result.metric("single_core_max_rel", single_max);
    result.metric("dual_core_max_rel", pair_max);
    result.metric("increase_pct", (pair_max / single_max - 1.0) * 100);
    result.series("grid_rel", grid);
    bench::emitResult(result);
    return 0;
}
