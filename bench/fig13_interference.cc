/**
 * @file
 * Fig 13: chip-wide peak-to-peak swing when both cores run event
 * microbenchmarks simultaneously — the 5x5 interference matrix,
 * relative to an idling machine.
 *
 * Paper headline: dual-core worst case 2.42x versus 1.7x single-core
 * (a 42 % increase); the magnitude depends strongly on the event
 * pairing (constructive vs destructive interference).
 */

#include <algorithm>
#include <iostream>
#include <memory>

#include "bench_util.hh"
#include "common/parallel.hh"
#include "common/table.hh"
#include "cpu/detailed_core.hh"
#include "sim/system.hh"
#include "workload/microbench.hh"

using namespace vsmooth;

namespace {

double
runPairP2p(workload::MicrobenchKind a, workload::MicrobenchKind b)
{
    sim::SystemConfig cfg;
    sim::System sys(cfg);
    auto s0 = workload::makeMicrobenchmark(a, 7);
    auto s1 = workload::makeMicrobenchmark(b, 99);
    sys.addCore(std::make_unique<cpu::DetailedCore>(
        cpu::DetailedCoreParams{}, *s0));
    sys.addCore(std::make_unique<cpu::DetailedCore>(
        cpu::DetailedCoreParams{}, *s1));
    sys.run(1'500'000);
    return sys.scope().visualPeakToPeak();
}

} // namespace

int
main()
{
    // Idle baseline.
    double idle;
    {
        sim::SystemConfig cfg;
        sim::System sys(cfg);
        sys.addCore(std::make_unique<cpu::FastCore>(
            workload::idleSchedule(1000), 42));
        sys.addCore(std::make_unique<cpu::FastCore>(
            workload::idleSchedule(1000), 43));
        sys.run(1'500'000);
        idle = sys.scope().visualPeakToPeak();
    }

    const auto &kinds = workload::kEventMicrobenchmarks;
    const std::size_t nk = kinds.size();

    // Single-core max (for the +42 % comparison); every cell is an
    // independent simulation, so the sweeps fan out over the pool.
    const auto singles = parallelMap<double>(nk, [&](std::size_t k) {
        sim::SystemConfig cfg;
        sim::System sys(cfg);
        auto s0 = workload::makeMicrobenchmark(kinds[k], 7);
        sys.addCore(std::make_unique<cpu::DetailedCore>(
            cpu::DetailedCoreParams{}, *s0));
        sys.addCore(std::make_unique<cpu::FastCore>(
            workload::idleSchedule(1000), 43));
        sys.run(1'500'000);
        return sys.scope().visualPeakToPeak() / idle;
    });
    const double single_max =
        *std::max_element(singles.begin(), singles.end());

    // The 5x5 dual-core interference grid, row-major.
    const auto grid = parallelMap<double>(nk * nk, [&](std::size_t t) {
        return runPairP2p(kinds[t / nk], kinds[t % nk]) / idle;
    });

    TextTable table(
        "Fig 13: dual-core p2p swing relative to idle (Core0 x Core1)");
    std::vector<std::string> header = {"Core0 \\ Core1"};
    for (auto k : kinds)
        header.emplace_back(workload::microbenchName(k));
    table.setHeader(header);

    double pair_max = 0.0;
    for (std::size_t r = 0; r < nk; ++r) {
        std::vector<std::string> row = {
            std::string(workload::microbenchName(kinds[r]))};
        for (std::size_t c = 0; c < nk; ++c) {
            const double rel = grid[r * nk + c];
            pair_max = std::max(pair_max, rel);
            row.push_back(TextTable::num(rel, 2));
        }
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout << "\nSingle-core max: " << TextTable::num(single_max, 2)
              << "x   dual-core max: " << TextTable::num(pair_max, 2)
              << "x   increase: "
              << TextTable::num((pair_max / single_max - 1.0) * 100, 0)
              << "%\nPaper: 1.7x single vs 2.42x dual (+42%), worst"
                 " case when both cores run the same heavyweight"
                 " event.\n";
    auto result = bench::makeResult("fig13_interference");
    result.metric("single_core_max_rel", single_max);
    result.metric("dual_core_max_rel", pair_max);
    result.metric("increase_pct", (pair_max / single_max - 1.0) * 100);
    result.series("grid_rel", grid);
    bench::emitResult(result);
    return 0;
}
