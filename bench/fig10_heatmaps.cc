/**
 * @file
 * Fig 10: improvement heatmaps — recovery cost x operating margin —
 * for Proc100, Proc25, and Proc3.
 *
 * The pocket of high improvement between -6 % and -2 % margins on
 * Proc100 shrinks on Proc25 and nearly vanishes on Proc3: keeping a
 * 15 % gain requires a 1000-cycle recovery on Proc100, ~100 cycles on
 * Proc25, and ~10 cycles on Proc3 (the paper's long-term argument).
 */

#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "resilience/perf_model.hh"

using namespace vsmooth;

int
main()
{
    auto result = bench::makeResult("fig10_heatmaps");
    for (double frac : {1.0, 0.25, 0.03}) {
        const auto pop = bench::runPopulation(100'000, frac);
        const auto map = resilience::improvementHeatmap(
            pop.emergencies, sim::recoveryCostSweep());

        const std::string proc = sim::procName(frac);
        double best = map.improvement[0][0];
        for (const auto &row : map.improvement)
            for (double v : row)
                best = std::max(best, v);
        result.metric("best_improvement_pct_" + proc, best);
        for (std::size_t c = 0; c < map.costs.size(); ++c) {
            result.metric("best_improvement_pct_" + proc + "_cost" +
                              TextTable::num(map.costs[c]),
                          *std::max_element(map.improvement[c].begin(),
                                            map.improvement[c].end()));
        }

        TextTable table("Fig 10 heatmap: improvement (%), " +
                        sim::procName(frac));
        std::vector<std::string> header = {"cost \\ margin (%)"};
        for (double m : map.margins) {
            if (std::fmod(m * 1000.0, 10.0) != 0.0)
                continue; // print every 1% column to keep rows short
            header.push_back(TextTable::num(m * 100, 0));
        }
        table.setHeader(header);
        for (std::size_t c = 0; c < map.costs.size(); ++c) {
            std::vector<std::string> row = {
                TextTable::num(map.costs[c])};
            for (std::size_t k = 0; k < map.margins.size(); ++k) {
                if (std::fmod(map.margins[k] * 1000.0, 10.0) != 0.0)
                    continue;
                row.push_back(
                    TextTable::num(map.improvement[c][k], 1));
            }
            table.addRow(row);
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "Paper: the blue high-improvement pocket (-6%..-2%)"
                 " shrinks from Proc100 to Proc25 and Proc3; finer"
                 " recovery is needed to retain 15%.\n";
    bench::emitResult(result);
    return 0;
}
