/**
 * @file
 * Fig 16: the sliding-window co-scheduling experiment — 473.astar
 * convolved against restarted instances of itself (on the future-node
 * Proc3, like all of the paper's Sec IV).
 *
 * Expected shape: the single-core profile is comparatively flat; the
 * co-scheduled profile shows *destructive* regions (droops near the
 * single-core level even though both cores are busy) and a
 * *constructive* region where droops roughly double.
 */

#include <algorithm>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "sched/sliding_window.hh"
#include "workload/spec_suite.hh"

using namespace vsmooth;

int
main()
{
    sim::SystemConfig cfg;
    cfg.package = pdn::PackageConfig::core2duo().withDecapFraction(0.03);

    const auto &astar = workload::specByName("astar");
    const auto result = sched::slidingWindowExperiment(
        astar, astar, /*windowCycles=*/100'000, /*baseLength=*/2'000'000,
        cfg);

    TextTable table("Fig 16: 473.astar sliding-window droop profile");
    table.setHeader({"window", "single-core", "co-scheduled", "ratio"});
    const std::size_t n =
        std::min(result.singleCore.size(), result.coScheduled.size());
    for (std::size_t i = 0; i < n; ++i) {
        table.addRow(
            {TextTable::num(static_cast<int>(i)),
             TextTable::num(result.singleCore[i], 1),
             TextTable::num(result.coScheduled[i], 1),
             TextTable::num(result.coScheduled[i] /
                                std::max(result.singleCore[i], 1e-9),
                            2)});
    }
    table.print(std::cout);

    double worst = 0.0, best = 1e30;
    for (std::size_t i = 0; i < n; ++i) {
        const double ratio =
            result.coScheduled[i] / std::max(result.singleCore[i], 1e-9);
        worst = std::max(worst, ratio);
        best = std::min(best, ratio);
    }
    std::cout << "\nConstructive worst window: "
              << TextTable::num(worst, 2)
              << "x single-core   destructive best window: "
              << TextTable::num(best, 2)
              << "x\nPaper: constructive regions near 2x (droops 80 ->"
                 " 160), destructive regions at the single-core"
                 " level.\n";
    auto out = bench::makeResult("fig16_sliding_window");
    out.metric("worst_window_ratio", worst);
    out.metric("best_window_ratio", best);
    out.series("single_core_droops_per_1k", result.singleCore);
    out.series("co_scheduled_droops_per_1k", result.coScheduled);
    bench::emitResult(out);
    return 0;
}
