/**
 * @file
 * Ablation: voltage noise versus core count.
 *
 * Sec III-C of the paper: "as the number of cores per processor
 * increases, this problem can worsen" — more cores on one shared rail
 * means more simultaneous stall/refill transients and a deeper
 * combined distribution. This study scales the same workload mix
 * from 1 to 8 cores on a fixed package.
 */

#include <iostream>
#include <memory>

#include "bench_util.hh"
#include "common/table.hh"
#include "cpu/fast_core.hh"
#include "sim/system.hh"
#include "workload/microbench.hh"
#include "workload/spec_suite.hh"

using namespace vsmooth;

int
main()
{
    const char *mix[] = {"sphinx", "mcf", "gamess", "milc",
                         "hmmer", "xalan", "lbm", "gcc"};

    TextTable t("voltage noise vs active core count (shared rail)");
    t.setHeader({"cores", "visual p2p (%)", "max droop (%)",
                 "droops/1K (2.3%)", "beyond -4% (%)"});

    auto result = bench::makeResult("ablation_core_scaling");
    for (std::size_t n : {1u, 2u, 4u, 8u}) {
        sim::SystemConfig cfg;
        sim::System sys(cfg);
        for (std::size_t c = 0; c < n; ++c) {
            sys.addCore(std::make_unique<cpu::FastCore>(
                workload::scheduleFor(workload::specByName(mix[c]),
                                      600'000, true),
                100 + c));
        }
        sys.run(600'000);
        t.addRow({TextTable::num(static_cast<std::uint64_t>(n)),
                  TextTable::num(sys.scope().visualPeakToPeak() * 100, 2),
                  TextTable::num(sys.scope().maxDroop() * 100, 2),
                  TextTable::num(
                      1000.0 * sys.scope().fractionBelow(-0.023), 1),
                  TextTable::num(
                      sys.scope().fractionBelow(-0.04) * 100, 3)});
        const std::string cores = TextTable::num(
            static_cast<std::uint64_t>(n));
        result.metric("visual_p2p_pct_" + cores + "core",
                      sys.scope().visualPeakToPeak() * 100);
        result.metric("max_droop_pct_" + cores + "core",
                      sys.scope().maxDroop() * 100);
        result.seriesPoint("droops_per_1k",
                           1000.0 * sys.scope().fractionBelow(-0.023));
    }
    t.print(std::cout);
    bench::emitResult(result);
    std::cout << "\nExpected: swings and margin violations grow with"
                 " active cores on a shared supply (the paper's Sec"
                 " III-C multi-core argument), which is what makes"
                 " noise-aware scheduling matter more at scale.\n";
    return 0;
}
