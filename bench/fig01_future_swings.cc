/**
 * @file
 * Fig 1: projected peak-to-peak voltage swings across technology
 * nodes, relative to the 45 nm node at 1 V.
 *
 * Method (paper footnote 1): simulate a Pentium 4-class power
 * delivery package; apply a current step (50-100 A at 45 nm — we use
 * the 75 A midpoint) scaled inversely with the ITRS Vdd at each node
 * (iso-power); report the resulting swing as a fraction of that
 * node's supply, normalized to 45 nm.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "pdn/droop_analysis.hh"
#include "tech/itrs.hh"

using namespace vsmooth;

int
main()
{
    const Amps base_stimulus{75.0};
    auto result = bench::makeResult("fig01_future_swings");

    TextTable table("Fig 1: projected voltage swings relative to 45nm");
    table.setHeader({"node", "vdd (V)", "stimulus (A)", "swing (mV)",
                     "swing (% of Vdd)", "relative to 45nm"});

    double swing45_pct = 0.0;
    for (const auto &node : tech::itrsNodes()) {
        pdn::PackageConfig cfg = pdn::PackageConfig::pentium4();
        cfg.vddNominal = node.vdd;

        const Amps stim = tech::scaledStimulus(base_stimulus, node);
        const pdn::VoltageWaveform wf = pdn::simulateCurrentStep(
            cfg, Amps(5.0), Amps(5.0 + stim.value()), Seconds(300e-9));

        const double swing_pct =
            100.0 * wf.peakToPeak() / node.vdd.value();
        if (swing45_pct == 0.0)
            swing45_pct = swing_pct;

        table.addRow({node.name, TextTable::num(node.vdd.value(), 2),
                      TextTable::num(stim.value(), 1),
                      TextTable::num(wf.peakToPeak() * 1e3, 1),
                      TextTable::num(swing_pct, 2),
                      TextTable::num(swing_pct / swing45_pct, 2)});
        result.seriesPoint("swing_pct_of_vdd", swing_pct);
        result.seriesPoint("swing_rel_45nm", swing_pct / swing45_pct);
        result.metric("swing_rel_" + node.name,
                      swing_pct / swing45_pct);
    }
    table.print(std::cout);
    std::cout << "\nPaper: swing roughly doubles by 16nm and reaches"
                 " ~2.5-3x by 11nm (Fig 1).\n";
    bench::emitResult(result);
    return 0;
}
