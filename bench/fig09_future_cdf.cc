/**
 * @file
 * Fig 9: typical-case voltage-sample distributions on the future-node
 * proxies Proc25 and Proc3.
 *
 * The paper's point: the distributions spread out as decap shrinks —
 * 0.06 % of samples violate the -4 % typical-case band on Proc100,
 * but ~0.2 % on Proc25 and ~2.2 % on Proc3, which is what erodes
 * resilient-design gains in future nodes.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"

using namespace vsmooth;

int
main()
{
    TextTable table("Fig 9: sample distribution spread vs decap");
    table.setHeader({"processor", "below -4% (%)", "below -2.3% (%)",
                     "max droop (%)", "visual p2p (%)"});

    auto result = bench::makeResult("fig09_future_cdf");
    for (double frac : {1.0, 0.25, 0.03}) {
        const auto pop = bench::runPopulation(100'000, frac);
        table.addRow(
            {sim::procName(frac),
             TextTable::num(pop.scope.fractionBelow(-0.04) * 100, 4),
             TextTable::num(
                 pop.scope.fractionBelow(-sim::kIdleMargin) * 100, 2),
             TextTable::num(pop.scope.maxDroop() * 100, 2),
             TextTable::num(pop.scope.visualPeakToPeak() * 100, 2)});
        const std::string proc = sim::procName(frac);
        result.metric("below_4pct_pct_" + proc,
                      pop.scope.fractionBelow(-0.04) * 100);
        result.metric("max_droop_pct_" + proc,
                      pop.scope.maxDroop() * 100);
        result.metric("visual_p2p_pct_" + proc,
                      pop.scope.visualPeakToPeak() * 100);
    }
    table.print(std::cout);
    bench::emitResult(result);
    std::cout << "\nPaper: 0.06% (Proc100), 0.2% (Proc25), 2.2% (Proc3)"
                 " of samples beyond the -4% typical-case margin;"
                 " Proc3's distribution visibly wider.\n";
    return 0;
}
