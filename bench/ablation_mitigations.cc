/**
 * @file
 * Ablation: the hardware mitigation baselines the paper's software
 * scheduler is positioned against, plus the split-vs-connected supply
 * comparison of footnote 3.
 *
 *  - Signature-based emergency prediction (Reddi et al., HPCA'09 [29])
 *  - Resonance-aware throttling (Powell & Vijaykumar [17][18])
 *  - Split per-core rails vs one connected rail (James et al. [1])
 */

#include <iostream>
#include <memory>

#include "bench_util.hh"
#include "common/table.hh"
#include "cpu/fast_core.hh"
#include "sim/system.hh"
#include "workload/microbench.hh"
#include "workload/spec_suite.hh"

using namespace vsmooth;

namespace {

struct Outcome
{
    std::uint64_t emergencies;
    double ipc;
    double throttledPct;
};

Outcome
run(bool predictor, bool damper, bool split)
{
    sim::SystemConfig cfg;
    cfg.emergencyMargin = 0.04;
    cfg.recoveryCostCycles = 600;
    cfg.enableEmergencyPredictor = predictor;
    cfg.enableResonanceDamper = damper;
    cfg.damperParams.triggerAmplitude = 0.022;
    cfg.throttleFactor = 0.75;
    cfg.splitSupplies = split;
    sim::System sys(cfg);
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::scheduleFor(workload::specByName("sphinx"), 800'000,
                              true),
        3));
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::scheduleFor(workload::specByName("mcf"), 800'000, true),
        4));
    sys.run(800'000);

    Outcome o;
    o.emergencies = sys.emergencies();
    o.ipc = sys.core(0).counters().ipc() + sys.core(1).counters().ipc();
    std::uint64_t throttled = 0;
    if (sys.predictor())
        throttled += sys.predictor()->throttledCycles();
    if (sys.damper())
        throttled += sys.damper()->throttledCycles();
    o.throttledPct =
        100.0 * static_cast<double>(throttled) /
        static_cast<double>(sys.cycles());
    return o;
}

} // namespace

int
main()
{
    TextTable t("Mitigation baselines (sphinx+mcf, 4% margin, "
                "600-cycle recovery)");
    t.setHeader({"configuration", "emergencies", "combined IPC",
                 "throttled (%)"});
    const struct
    {
        const char *name;
        const char *tag;
        bool predictor, damper, split;
    } configs[] = {
        {"connected rail, no mitigation", "baseline", false, false, false},
        {"+ signature predictor [29]", "predictor", true, false, false},
        {"+ resonance damper [17,18]", "damper", false, true, false},
        {"+ both", "both", true, true, false},
        {"split per-core rails [1]", "split", false, false, true},
    };
    auto result = bench::makeResult("ablation_mitigations");
    for (const auto &c : configs) {
        const auto o = run(c.predictor, c.damper, c.split);
        t.addRow({c.name, TextTable::num(o.emergencies),
                  TextTable::num(o.ipc, 2),
                  TextTable::num(o.throttledPct, 1)});
        result.metric(std::string("emergencies_") + c.tag,
                      static_cast<double>(o.emergencies));
        result.metric(std::string("ipc_") + c.tag, o.ipc);
        result.metric(std::string("throttled_pct_") + c.tag,
                      o.throttledPct);
    }
    t.print(std::cout);
    bench::emitResult(result);
    std::cout << "\nExpected: both mitigations cut emergencies at a"
                 " small throughput cost; split rails make noise"
                 " worse (the paper's footnote 3), which is why the"
                 " shared-rail + software-scheduling route wins.\n";
    return 0;
}
