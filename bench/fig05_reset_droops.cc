/**
 * @file
 * Fig 5 (m-r): die-voltage response to the reset stimulus across the
 * decap-removal processors Proc100..Proc0.
 *
 * The paper resets an idling machine and scopes the droop: a sharp
 * ~150 mV dip on Proc100 growing to ~350 mV spread over several
 * cycles on Proc0 (which then fails stability testing). We drive the
 * same stimulus — idle, halt (current collapse), inrush surge —
 * through the full PDN ladder.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "pdn/droop_analysis.hh"
#include "sim/calibration.hh"

using namespace vsmooth;

int
main()
{
    TextTable table("Fig 5: reset-stimulus droop per processor");
    table.setHeader({"processor", "droop (mV)", "overshoot (mV)",
                     "p2p (mV)", "time >5% below nominal (ns)",
                     "resonance (MHz)"});

    auto result = bench::makeResult("fig05_reset_droops");
    for (double frac : sim::procDecapFractions()) {
        const auto cfg =
            pdn::PackageConfig::core2duo().withDecapFraction(frac);
        const pdn::VoltageWaveform wf = pdn::simulateReset(cfg);
        table.addRow(
            {sim::procName(frac), TextTable::num(wf.maxDroop() * 1e3, 1),
             TextTable::num(wf.maxOvershoot() * 1e3, 1),
             TextTable::num(wf.peakToPeak() * 1e3, 1),
             TextTable::num(wf.timeBelow(0.95).value() * 1e9, 1),
             TextTable::num(cfg.resonanceFrequency().value() / 1e6, 0)});
        result.seriesPoint("droop_mv", wf.maxDroop() * 1e3);
        result.seriesPoint("overshoot_mv", wf.maxOvershoot() * 1e3);
        result.seriesPoint("p2p_mv", wf.peakToPeak() * 1e3);
        result.metric(std::string("droop_mv_") + sim::procName(frac),
                      wf.maxDroop() * 1e3);
    }
    table.print(std::cout);
    bench::emitResult(result);
    std::cout << "\nPaper: ~150 mV droop on Proc100 growing to ~350 mV"
                 " on Proc0, with the droop extending over a longer"
                 " time as decap shrinks.\n";
    return 0;
}
