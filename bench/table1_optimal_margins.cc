/**
 * @file
 * Table I: typical-case design analysis of SPECrate schedules on the
 * Proc3 future node — for each recovery cost, the optimal aggressive
 * margin (derived from the full workload population), the expected
 * improvement at it, and how many of the 29 SPECrate schedules
 * actually meet that expectation.
 *
 * Paper values: margins tighten from 5.3 % (1-cycle recovery) to
 * 8.6 % (100k), expected improvement falls 15.7 % -> 9.7 %, and the
 * passing count collapses 28 -> 9 as recovery coarsens.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "sched/pass_analysis.hh"
#include "sim/calibration.hh"

using namespace vsmooth;

int
main()
{
    sched::OracleConfig cfg;
    cfg.system.package =
        pdn::PackageConfig::core2duo().withDecapFraction(0.03);
    cfg.cyclesPerPair = 800'000;
    cfg.droopMargin = sim::kProc3DroopMargin;
    const sched::OracleMatrix matrix(workload::specCpu2006(), cfg);

    const auto rows =
        sched::optimalMarginTable(matrix, sim::recoveryCostSweep(),
                                  /*tolerancePercent=*/1.0);

    TextTable table("Table I: SPECrate typical-case analysis (Proc3)");
    table.setHeader({"recovery cost (cycles)", "optimal margin (%)",
                     "expected improvement (%)", "# schedules that pass",
                     "paper margin (%)", "paper improv (%)",
                     "paper passes"});

    const char *paper[6][3] = {{"5.3", "15.7", "28"}, {"5.6", "15.1", "28"},
                               {"6.4", "13.7", "15"}, {"7.4", "12.2", "12"},
                               {"8.2", "10.8", "9"},  {"8.6", "9.7", "9"}};
    auto result = bench::makeResult("table1_optimal_margins");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto &r = rows[i];
        table.addRow({TextTable::num(r.recoveryCost),
                      TextTable::num(r.optimalMargin * 100, 1),
                      TextTable::num(r.expectedImprovementPercent, 1),
                      TextTable::num(r.passingSpecRate),
                      paper[i][0], paper[i][1], paper[i][2]});
        const std::string cost = TextTable::num(r.recoveryCost);
        result.metric("optimal_margin_pct_cost" + cost,
                      r.optimalMargin * 100);
        result.metric("improvement_pct_cost" + cost,
                      r.expectedImprovementPercent);
        result.metric("passes_cost" + cost,
                      static_cast<double>(r.passingSpecRate));
    }
    table.print(std::cout);
    bench::emitResult(result);
    std::cout << "\nShape targets: margins relax and improvement falls"
                 " as recovery coarsens; the passing count collapses"
                 " beyond ~10-cycle recovery.\n";
    return 0;
}
