/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 *
 * Every bench binary prints the paper's rows or series through
 * TextTable so the reproduction output is uniform; this header holds
 * the run plumbing they share (single runs, pair runs, population
 * aggregation over the 29 + 11 + pairs workload set).
 */

#ifndef VSMOOTH_BENCH_BENCH_UTIL_HH
#define VSMOOTH_BENCH_BENCH_UTIL_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.hh"
#include "cpu/fast_core.hh"
#include "noise/scope.hh"
#include "resilience/perf_model.hh"
#include "sim/system.hh"
#include "workload/microbench.hh"
#include "workload/parsec.hh"
#include "workload/spec_suite.hh"

namespace vsmooth::bench {

/** Outcome of one measured run. */
struct RunResult
{
    noise::Scope scope;
    resilience::EmergencyProfile emergencies;
    double stallRatio = 0.0;
    double ipc = 0.0;
    Cycles cycles = 0;

    /** Droops (samples below margin) per 1K cycles. */
    double
    droopsPer1k(double margin = sim::kIdleMargin) const
    {
        return 1000.0 * scope.fractionBelow(-margin);
    }
};

/** Collect a RunResult from a completed simulation. */
RunResult resultFrom(sim::System &sys);

/**
 * A fully constructed simulation plus its run plan, ready to execute
 * either solo or as one lane of a sim::LaneGroup sweep. The System is
 * held by value so a sweep group can own its lane states contiguously.
 */
struct PreparedRun
{
    sim::System sys;
    Cycles cycles = 0;
    /** Run until the schedules finish instead of for a fixed budget. */
    bool untilFinished = false;
    /** After finishing, pad out to this cycle count (0 = no pad). */
    Cycles padTo = 0;
};

/** Build (but do not run) the runSingle simulation. */
PreparedRun prepareSingle(const workload::SpecBenchmark &bench,
                          Cycles cycles, double decapFraction = 1.0,
                          std::uint64_t seed = 1);

/** Build (but do not run) the runPair simulation. */
PreparedRun preparePair(const workload::SpecBenchmark &a,
                        const workload::SpecBenchmark &b, Cycles cycles,
                        double decapFraction = 1.0, std::uint64_t seed = 1);

/** Build (but do not run) the runParsec simulation. */
PreparedRun prepareParsec(const workload::ParsecBenchmark &bench,
                          Cycles cycles, double decapFraction = 1.0,
                          std::uint64_t seed = 1);

/** Run one benchmark with the second core idle. */
RunResult runSingle(const workload::SpecBenchmark &bench, Cycles cycles,
                    double decapFraction = 1.0, std::uint64_t seed = 1);

/** Run a benchmark pair (multi-program). */
RunResult runPair(const workload::SpecBenchmark &a,
                  const workload::SpecBenchmark &b, Cycles cycles,
                  double decapFraction = 1.0, std::uint64_t seed = 1);

/** Run one PARSEC program with two threads. */
RunResult runParsec(const workload::ParsecBenchmark &bench, Cycles cycles,
                    double decapFraction = 1.0, std::uint64_t seed = 1);

/**
 * Execute `total` independently prepared simulations, draining them
 * through sim::LaneGroup lanes under the worker-thread pool: each
 * worker claims a group of K consecutive indices, builds its K systems
 * with `prepare`, steps them in SIMD lockstep, and hands each finished
 * system to `extract` (called with the scenario index, in group order).
 * Group boundaries derive from the index alone and every laned run is
 * bit-identical to a solo run, so results are invariant under both the
 * job count and the lane width.
 */
void runLanedSweep(
    std::size_t total,
    const std::function<PreparedRun(std::size_t)> &prepare,
    const std::function<void(std::size_t, sim::System &)> &extract);

/**
 * Aggregate population statistics over the paper's 881-run set
 * (29 single-threaded + 11 multi-threaded + 29x29 multi-program),
 * sub-sampled: all singles, all PARSEC, and every pair combination
 * (unordered, which is statistically equivalent to the full ordered
 * sweep on symmetric cores).
 */
struct Population
{
    noise::Scope scope;
    resilience::EmergencyProfile emergencies;
    /** Per-run fraction of samples below -4 % (typical-case tail). */
    std::vector<double> tailFractions;
    std::size_t runs = 0;
    /** Merged sampled-execution report over all runs (inactive when
     *  every run executed exactly — the default). */
    sim::SamplingReport sampling;
};

Population runPopulation(Cycles cyclesPerRun, double decapFraction,
                         std::uint64_t seed = 1);

/**
 * Start a structured Result for one experiment, stamped with the
 * primary RNG seed, the effective worker-thread count (VSMOOTH_JOBS /
 * --jobs), and the git revision of the producing build.
 */
Result makeResult(std::string experiment, std::uint64_t seed = 1);

/**
 * Attach sampled-execution metadata to a Result when the report says
 * sampling was active (a no-op otherwise, so default exact runs keep
 * their goldens byte-stable): the mode, the realized simulated
 * fraction, and the caller-supplied (metric-name, absolute-bound)
 * annotations mapping the report's generic bounds onto the
 * experiment's own metric/series names and units.
 */
void stampSampling(Result &r, const sim::SamplingReport &report,
                   std::vector<std::pair<std::string, double>> bounds);

/**
 * Emit a Result as JSON alongside the text tables. The destination
 * comes from the environment so interactive runs stay file-free:
 *   VSMOOTH_RESULT_FILE=<path>  write exactly there;
 *   VSMOOTH_RESULT_DIR=<dir>    write <dir>/<experiment>.json;
 * neither set: no file is written. `vsmooth verify` sets the former
 * for each experiment it re-runs and diffs against bench/golden/.
 */
void emitResult(const Result &r);

} // namespace vsmooth::bench

#endif // VSMOOTH_BENCH_BENCH_UTIL_HH
