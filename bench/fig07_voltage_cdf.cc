/**
 * @file
 * Fig 7: cumulative distribution of voltage samples on the unmodified
 * processor (Proc100) across the full workload population (the
 * paper's 881 runs: single-threaded, multi-threaded, multi-program).
 *
 * Paper findings reproduced here: droops reach ~9.6 % (so the 14 %
 * worst-case margin is justified), but the typical case is +/-4 %,
 * with only ~0.06 % of samples beyond it.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/statistics.hh"
#include "common/table.hh"

using namespace vsmooth;

int
main()
{
    const auto pop = bench::runPopulation(150'000, 1.0);

    TextTable table("Fig 7: voltage-sample CDF, Proc100 (population)");
    table.setHeader({"deviation (%)", "fraction of samples below"});
    for (double dev : {-8.0, -6.0, -5.0, -4.0, -3.0, -2.0, -1.0, 0.0,
                       1.0, 2.0, 3.0, 4.0}) {
        table.addRow({TextTable::num(dev, 1),
                      TextTable::num(
                          pop.scope.fractionBelow(dev / 100.0), 6)});
    }
    table.print(std::cout);

    const double beyond =
        pop.scope.fractionOutside(sim::kTypicalCaseBand);
    std::cout << "\nRuns aggregated: " << pop.runs << "\n"
              << "Max droop: "
              << TextTable::num(pop.scope.maxDroop() * 100, 2)
              << "% (paper: 9.6%)\n"
              << "Max overshoot: "
              << TextTable::num(pop.scope.maxOvershoot() * 100, 2)
              << "%\n"
              << "Samples beyond +/-4%: "
              << TextTable::num(beyond * 100, 4)
              << "% (paper: 0.06%)\n"
              << "Worst-case margin of the part: 14% -> still needed"
                 " for the rare deep droops, but far from typical.\n";
    return 0;
}
