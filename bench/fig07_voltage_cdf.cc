/**
 * @file
 * Fig 7: cumulative distribution of voltage samples on the unmodified
 * processor (Proc100) across the full workload population (the
 * paper's 881 runs: single-threaded, multi-threaded, multi-program).
 *
 * Paper findings reproduced here: droops reach ~9.6 % (so the 14 %
 * worst-case margin is justified), but the typical case is +/-4 %,
 * with only ~0.06 % of samples beyond it.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/statistics.hh"
#include "common/table.hh"

using namespace vsmooth;

int
main()
{
    const auto pop = bench::runPopulation(150'000, 1.0);

    auto result = bench::makeResult("fig07_voltage_cdf");
    TextTable table("Fig 7: voltage-sample CDF, Proc100 (population)");
    table.setHeader({"deviation (%)", "fraction of samples below"});
    for (double dev : {-8.0, -6.0, -5.0, -4.0, -3.0, -2.0, -1.0, 0.0,
                       1.0, 2.0, 3.0, 4.0}) {
        const double frac = pop.scope.fractionBelow(dev / 100.0);
        table.addRow({TextTable::num(dev, 1),
                      TextTable::num(frac, 6)});
        result.seriesPoint("cdf_fraction_below", frac);
    }
    table.print(std::cout);

    const double beyond =
        pop.scope.fractionOutside(sim::kTypicalCaseBand);
    result.metric("runs", static_cast<double>(pop.runs));
    result.metric("max_droop_pct", pop.scope.maxDroop() * 100);
    result.metric("max_overshoot_pct", pop.scope.maxOvershoot() * 100);
    result.metric("beyond_4pct_pct", beyond * 100);
    // Under VSMOOTH_SAMPLING=auto the population is extrapolated;
    // annotate each affected metric with its absolute error bound
    // (in the metric's own percent units) so verify tolerates the
    // bounded deviation instead of demanding bit-identity.
    bench::stampSampling(
        result, pop.sampling,
        {{"max_droop_pct", pop.sampling.maxDroopBound * 100},
         {"max_overshoot_pct", pop.sampling.maxOvershootBound * 100},
         {"beyond_4pct_pct", pop.sampling.histFractionBound * 100},
         {"cdf_fraction_below", pop.sampling.histFractionBound}});
    bench::emitResult(result);
    std::cout << "\nRuns aggregated: " << pop.runs << "\n"
              << "Max droop: "
              << TextTable::num(pop.scope.maxDroop() * 100, 2)
              << "% (paper: 9.6%)\n"
              << "Max overshoot: "
              << TextTable::num(pop.scope.maxOvershoot() * 100, 2)
              << "%\n"
              << "Samples beyond +/-4%: "
              << TextTable::num(beyond * 100, 4)
              << "% (paper: 0.06%)\n"
              << "Worst-case margin of the part: 14% -> still needed"
                 " for the rare deep droops, but far from typical.\n";
    return 0;
}
