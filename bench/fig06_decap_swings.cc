/**
 * @file
 * Fig 6: peak-to-peak voltage swing versus remaining package decap,
 * normalized to Proc100 — the paper's decap-removal trend, which it
 * uses as a proxy for future technology nodes (compare Fig 1).
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "pdn/droop_analysis.hh"
#include "sim/calibration.hh"

using namespace vsmooth;

int
main()
{
    TextTable table("Fig 6: p2p swing relative to Proc100");
    table.setHeader({"processor", "decap left (%)", "p2p (mV)",
                     "relative"});

    auto result = bench::makeResult("fig06_decap_swings");
    double base = 0.0;
    double last_rel = 1.0;
    for (double frac : sim::procDecapFractions()) {
        const auto cfg =
            pdn::PackageConfig::core2duo().withDecapFraction(frac);
        const pdn::VoltageWaveform wf = pdn::simulateReset(cfg);
        if (base == 0.0)
            base = wf.peakToPeak();
        last_rel = wf.peakToPeak() / base;
        table.addRow({sim::procName(frac),
                      TextTable::num(frac * 100.0, 0),
                      TextTable::num(wf.peakToPeak() * 1e3, 1),
                      TextTable::num(last_rel, 2)});
        result.seriesPoint("p2p_mv", wf.peakToPeak() * 1e3);
        result.seriesPoint("p2p_rel", last_rel);
    }
    result.metric("p2p_rel_proc0", last_rel);
    table.print(std::cout);
    bench::emitResult(result);
    std::cout << "\nPaper: trend mirrors Fig 1 (2.33x at Proc0); knee"
                 " of the curve around Proc25..Proc3.\n";
    return 0;
}
