/**
 * @file
 * Fig 15: per-benchmark droop rate and pipeline stall ratio across
 * the 29 CPU2006 workloads (single-core, other core idle).
 *
 * Paper headline: droops per 1K cycles vary widely across the suite
 * and correlate with the VTune stall ratio at r = 0.97 — the
 * observation that makes a software (performance-counter-driven)
 * scheduler feasible.
 */

#include <algorithm>
#include <iostream>

#include "bench_util.hh"
#include "common/parallel.hh"
#include "common/statistics.hh"
#include "common/table.hh"

using namespace vsmooth;

int
main()
{
    TextTable table("Fig 15: droops/1K cycles and stall ratio");
    table.setHeader({"benchmark", "droops/1K", "stall ratio", "IPC"});

    // One independent run per benchmark; seeds derive from the suite
    // index (the serial loop's `seed += 13` walk), results land in
    // suite order, so the table is identical for any job count. The
    // sweep drains the suite K benchmarks at a time through the
    // scenario-lane engine.
    const auto &suite = workload::specCpu2006();
    std::vector<bench::RunResult> results(suite.size());
    bench::runLanedSweep(
        suite.size(),
        [&](std::size_t k) {
            return bench::prepareSingle(suite[k], 1'000'000, 1.0,
                                        1000 + 13ULL * (k + 1));
        },
        [&](std::size_t k, sim::System &sys) {
            results[k] = bench::resultFrom(sys);
        });

    std::vector<double> droops, stalls;
    for (std::size_t k = 0; k < suite.size(); ++k) {
        const auto &r = results[k];
        droops.push_back(r.droopsPer1k());
        stalls.push_back(r.stallRatio);
        table.addRow({suite[k].name, TextTable::num(r.droopsPer1k(), 1),
                      TextTable::num(r.stallRatio, 2),
                      TextTable::num(r.ipc, 2)});
    }
    table.print(std::cout);

    std::cout << "\nLinear correlation (droops vs stall ratio): "
              << TextTable::num(pearson(droops, stalls), 3)
              << " (paper: 0.97)\n"
              << "Droop range across the suite: "
              << TextTable::num(
                     *std::min_element(droops.begin(), droops.end()), 0)
              << ".."
              << TextTable::num(
                     *std::max_element(droops.begin(), droops.end()), 0)
              << " per 1K cycles (paper: ~40..120)\n";
    auto result = bench::makeResult("fig15_stall_correlation");
    result.metric("pearson_r", pearson(droops, stalls));
    result.metric("droops_per_1k_min",
                  *std::min_element(droops.begin(), droops.end()));
    result.metric("droops_per_1k_max",
                  *std::max_element(droops.begin(), droops.end()));
    result.series("droops_per_1k", droops);
    result.series("stall_ratio", stalls);
    bench::emitResult(result);
    return 0;
}
