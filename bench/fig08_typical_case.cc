/**
 * @file
 * Fig 8: performance improvement from typical-case design on Proc100,
 * across voltage margins, for recovery costs 1..100k cycles.
 *
 * Reproduces the paper's three observations: one optimum per recovery
 * cost, 13-21 % gains at the optimum, and a "dead zone" past the
 * optimum where recoveries erase the gains (improvement < 0).
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "resilience/perf_model.hh"

using namespace vsmooth;

int
main()
{
    const auto pop = bench::runPopulation(150'000, 1.0);
    const auto &costs = sim::recoveryCostSweep();

    TextTable table(
        "Fig 8: improvement (%) vs margin, per recovery cost, Proc100");
    std::vector<std::string> header = {"margin (%)"};
    for (auto c : costs)
        header.push_back("cost " + TextTable::num(c));
    table.setHeader(header);

    for (double m : pop.emergencies.margins) {
        if (m > sim::kWorstCaseMargin)
            continue;
        std::vector<std::string> row = {TextTable::num(m * 100, 1)};
        for (auto c : costs) {
            row.push_back(TextTable::num(
                resilience::improvementPercent(pop.emergencies, m, c),
                2));
        }
        table.addRow(row);
    }
    table.print(std::cout);

    auto result = bench::makeResult("fig08_typical_case");
    std::cout << "\nOptimal margins:\n";
    for (auto c : costs) {
        const auto best = resilience::optimalMargin(pop.emergencies, c);
        std::cout << "  cost " << c << ": margin "
                  << TextTable::num(best.margin * 100, 1)
                  << "% -> improvement "
                  << TextTable::num(best.improvementPercent, 1) << "%\n";
        result.metric("optimal_margin_pct_cost" + TextTable::num(c),
                      best.margin * 100);
        result.metric("improvement_pct_cost" + TextTable::num(c),
                      best.improvementPercent);
    }
    bench::emitResult(result);
    std::cout << "\nPaper: gains between 13% and ~21%; overly"
                 " aggressive margins fall into the dead zone"
                 " (below 0%).\n";
    return 0;
}
