/**
 * @file
 * Fig 17: droop spread of every benchmark across all of its
 * co-schedules (boxplot data), with the single-core and SPECrate
 * (self-paired) values as the markers, on the Proc3 future node.
 *
 * Paper points: destructive interference exists (box bottoms at or
 * below single-core), constructive interference is common, and in
 * over half the co-schedules there is room to do better than the
 * SPECrate baseline. libquantum is the famous outlier with almost no
 * spread.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/statistics.hh"
#include "common/table.hh"
#include "sched/oracle_matrix.hh"

using namespace vsmooth;

int
main()
{
    sched::OracleConfig cfg;
    cfg.system.package =
        pdn::PackageConfig::core2duo().withDecapFraction(0.03);
    cfg.cyclesPerPair = 800'000;
    cfg.droopMargin = sim::kProc3DroopMargin;

    const sched::OracleMatrix matrix(workload::specCpu2006(), cfg);

    TextTable table(
        "Fig 17: droops/1K across co-schedules (Proc3)");
    table.setHeader({"benchmark", "single", "SPECrate", "min", "q1",
                     "median", "q3", "max"});

    auto result = bench::makeResult("fig17_coschedule_spread");
    std::size_t better_than_specrate = 0, total = 0;
    for (std::size_t i = 0; i < matrix.size(); ++i) {
        std::vector<double> spread;
        for (std::size_t j = 0; j < matrix.size(); ++j) {
            spread.push_back(matrix.pair(i, j).droopsPer1k);
            if (matrix.pair(i, j).droopsPer1k <
                matrix.specRate(i).droopsPer1k)
                ++better_than_specrate;
            ++total;
        }
        const auto box = boxplot(spread);
        table.addRow({matrix.benchmark(i).name,
                      TextTable::num(matrix.single(i).droopsPer1k, 1),
                      TextTable::num(matrix.specRate(i).droopsPer1k, 1),
                      TextTable::num(box.min, 1),
                      TextTable::num(box.q1, 1),
                      TextTable::num(box.median, 1),
                      TextTable::num(box.q3, 1),
                      TextTable::num(box.max, 1)});
        result.seriesPoint("median_droops_per_1k", box.median);
        result.seriesPoint("single_droops_per_1k",
                           matrix.single(i).droopsPer1k);
        result.seriesPoint("specrate_droops_per_1k",
                           matrix.specRate(i).droopsPer1k);
    }
    table.print(std::cout);

    const double better_pct =
        100.0 * static_cast<double>(better_than_specrate) /
        static_cast<double>(total);
    std::cout << "\nCo-schedules with fewer droops than the SPECrate"
                 " baseline: "
              << TextTable::num(better_pct, 0)
              << "% (paper: over half show room for improvement)\n";
    result.metric("better_than_specrate_pct", better_pct);
    bench::emitResult(result);
    return 0;
}
