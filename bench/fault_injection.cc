/**
 * @file
 * Undervolt fault injection: the functional cost of a thin margin.
 *
 * The fault rig (one detailed core over an 8 MiB mixed stream, the
 * margin-dependent bit-flip model attached to l1d/l2/tlb) is swept
 * from the safe margin down to zero guard band. Fault counts are
 * exactly zero at the safe margin, grow superlinearly as the margin
 * thins, and every count is deterministic — the golden pins the exact
 * per-structure numbers at any --jobs or SIMD level.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "cpu/fault_injector.hh"
#include "simtest/properties.hh"

using namespace vsmooth;

namespace {

constexpr Cycles kCycles = 200'000;
constexpr double kRate = 5e-3;
constexpr std::uint64_t kSeed = 1;

} // namespace

int
main()
{
    cpu::FaultModelParams model;
    model.rateAtZeroMargin = kRate;

    const double margins[] = {0.05, 0.04, 0.03, 0.02, 0.01, 0.0};

    TextTable t("Undervolt fault injection (detailed core, 200k "
                "cycles, rate 5e-3 at zero margin)");
    t.setHeader({"margin (%)", "p(fault)/access", "l1d", "l2", "tlb",
                 "total", "l1d misses"});

    auto result = bench::makeResult("fault_injection", kSeed);
    std::uint64_t prevTotal = 0;
    bool first = true;
    for (double m : margins) {
        const auto c = simtest::runFaultRig(kSeed, m, kRate, kCycles);
        const double p = cpu::FaultInjector::faultProbabilityAt(model, m);
        t.addRow({TextTable::num(100.0 * m, 1), TextTable::num(p, 6),
                  TextTable::num(c.l1dFaults), TextTable::num(c.l2Faults),
                  TextTable::num(c.tlbFaults),
                  TextTable::num(c.totalFaults()),
                  TextTable::num(c.l1dMisses)});
        const std::string tag = TextTable::num(1000.0 * m, 0);
        result.seriesPoint("margins", m);
        result.seriesPoint("fault_probability", p);
        result.seriesPoint("faults_l1d",
                           static_cast<double>(c.l1dFaults));
        result.seriesPoint("faults_l2",
                           static_cast<double>(c.l2Faults));
        result.seriesPoint("faults_tlb",
                           static_cast<double>(c.tlbFaults));
        result.seriesPoint("faults_total",
                           static_cast<double>(c.totalFaults()));
        result.seriesPoint("misses_l1d",
                           static_cast<double>(c.l1dMisses));
        result.seriesPoint("instructions",
                           static_cast<double>(c.instructions));
        if (first && c.totalFaults() != 0) {
            std::cerr << "ERROR: faults at the safe margin\n";
            return 1;
        }
        first = false;
        prevTotal = c.totalFaults();
    }
    (void)prevTotal;
    t.print(std::cout);
    bench::emitResult(result);
    std::cout << "\nExpected: exactly zero faults at the 5% safe"
                 " margin, then superlinear growth as the guard band"
                 " is consumed — the functional cost the adaptive"
                 " margin controller's lower bound protects against.\n";
    return 0;
}
