/**
 * @file
 * Fig 4: power-delivery impedance profile seen from the die, default
 * versus reduced package decap.
 *
 * The paper validated its sensing rig by reconstructing this profile
 * and matching Intel's published data: a resonance peak in the
 * 100-200 MHz band, and substantially higher impedance with package
 * capacitors removed. We reproduce it with an AC analysis of the PDN
 * ladder netlist.
 */

#include <iostream>

#include "bench_util.hh"
#include "circuit/ac.hh"
#include "common/table.hh"
#include "pdn/ladder.hh"

using namespace vsmooth;

int
main()
{
    const std::vector<std::pair<const char *, double>> configs = {
        {"default #caps (Proc100)", 1.0},
        {"reduced #caps (Proc25)", 0.25},
        {"reduced #caps (Proc3)", 0.03},
    };

    TextTable table("Fig 4: impedance vs frequency (mOhm)");
    table.setHeader({"freq (MHz)", "Proc100", "Proc25", "Proc3"});

    std::vector<std::vector<circuit::ImpedancePoint>> sweeps;
    for (const auto &[name, frac] : configs) {
        auto cfg = pdn::PackageConfig::core2duo().withDecapFraction(frac);
        auto net = pdn::buildLadder(cfg, 1);
        sweeps.push_back(circuit::impedanceSweep(
            net.net, net.dieNode, Hertz(1e6), Hertz(500e6), 28));
    }

    for (std::size_t i = 0; i < sweeps[0].size(); ++i) {
        table.addRow({TextTable::num(sweeps[0][i].frequencyHz / 1e6, 2),
                      TextTable::num(sweeps[0][i].magnitude() * 1e3, 3),
                      TextTable::num(sweeps[1][i].magnitude() * 1e3, 3),
                      TextTable::num(sweeps[2][i].magnitude() * 1e3, 3)});
    }
    table.print(std::cout);

    auto result = bench::makeResult("fig04_impedance");
    const char *tags[] = {"proc100", "proc25", "proc3"};
    for (std::size_t k = 0; k < configs.size(); ++k) {
        const auto peak = circuit::resonancePeak(sweeps[k]);
        std::cout << configs[k].first << ": resonance peak "
                  << TextTable::num(peak.magnitude() * 1e3, 2)
                  << " mOhm at "
                  << TextTable::num(peak.frequencyHz / 1e6, 0) << " MHz\n";
        result.metric(std::string("resonance_mohm_") + tags[k],
                      peak.magnitude() * 1e3);
        result.metric(std::string("resonance_mhz_") + tags[k],
                      peak.frequencyHz / 1e6);
        std::vector<double> mags;
        for (const auto &p : sweeps[k])
            mags.push_back(p.magnitude() * 1e3);
        result.series(std::string("impedance_mohm_") + tags[k],
                      std::move(mags));
    }
    std::cout << "\nPaper: peak in the 100-200 MHz band; reduced decap"
                 " raises impedance across the band (~5x).\n";
    bench::emitResult(result);
    return 0;
}
