/**
 * @file
 * Fig 14: voltage-noise phases — droops per 1K cycles over time for
 * three representative benchmarks:
 *   482.sphinx: no phases (stable near the top of the range),
 *   416.gamess: four clean phases between ~60 and ~100,
 *   465.tonto: strong oscillation between ~60 and ~100.
 *
 * Like the paper's Sec IV characterization, the droop margin is
 * 2.3 % (everything an idling machine does stays inside it) and the
 * counts come from the scope-histogram sample metric.
 */

#include <iostream>
#include <memory>

#include "bench_util.hh"
#include "common/table.hh"
#include "cpu/fast_core.hh"
#include "noise/timeline.hh"
#include "sim/system.hh"
#include "workload/microbench.hh"
#include "workload/spec_suite.hh"

using namespace vsmooth;

int
main()
{
    auto result = bench::makeResult("fig14_noise_phases");
    for (const char *name : {"sphinx", "gamess", "tonto"}) {
        const auto &bench = workload::specByName(name);

        sim::SystemConfig cfg;
        cfg.enableTimeline = true;
        cfg.timelineInterval = 100'000; // the paper's 60 s, scaled
        sim::System sys(cfg);
        sys.addCore(std::make_unique<cpu::FastCore>(
            workload::scheduleFor(bench, 2'000'000), 11));
        sys.addCore(std::make_unique<cpu::FastCore>(
            workload::idleSchedule(1000), 43));
        while (!sys.core(0).finished())
            sys.tick();

        const auto &series = sys.timelineSeries();
        TextTable table("Fig 14: droops/1K cycles over time - " +
                        bench.name);
        table.setHeader({"interval", "droops/1K", ""});
        for (std::size_t i = 0; i < series.size(); ++i) {
            table.addRow({TextTable::num(static_cast<int>(i)),
                          TextTable::num(series[i], 1),
                          std::string(
                              static_cast<std::size_t>(series[i] / 2.5),
                              '#')});
        }
        table.print(std::cout);

        const auto phases = noise::detectPhases(series, 12.0);
        std::cout << "Detected phases: " << phases.size() << " (";
        for (std::size_t p = 0; p < phases.size(); ++p) {
            if (p)
                std::cout << ", ";
            std::cout << TextTable::num(phases[p].meanDroopsPer1k, 0);
        }
        std::cout << " droops/1K)\n\n";
        result.metric(std::string("phases_") + name,
                      static_cast<double>(phases.size()));
        result.series(std::string("droops_per_1k_") + name, series);
    }
    std::cout << "Paper: sphinx flat (~100), gamess four phases"
                 " (60..100), tonto oscillating (60..100).\n";
    bench::emitResult(result);
    return 0;
}
