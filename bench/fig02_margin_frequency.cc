/**
 * @file
 * Fig 2: peak clock frequency (as % of nominal) versus operating
 * voltage margin, per technology node.
 *
 * Method (paper footnote 2): an 11-stage fanout-of-4 ring oscillator
 * modeled with the alpha-power law; frequency at (1 - margin) * Vdd
 * relative to frequency at Vdd. Shows the paper's headline numbers:
 * a 20 % margin at 45 nm costs ~25 % of peak frequency, and the same
 * percentage margin costs far more at scaled supplies.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "tech/itrs.hh"
#include "tech/ring_oscillator.hh"

using namespace vsmooth;

int
main()
{
    const tech::RingOscillator ring;
    auto result = bench::makeResult("fig02_margin_frequency");

    TextTable table("Fig 2: peak frequency (%) vs margin (%)");
    std::vector<std::string> header = {"margin (%)"};
    std::vector<const tech::TechNode *> nodes;
    for (const auto &node : tech::itrsNodes()) {
        if (node.name == "11nm")
            continue; // Fig 2 plots 45/32/22/16 nm
        nodes.push_back(&node);
        header.push_back(node.name + " (Vdd=" +
                         TextTable::num(node.vdd.value(), 1) + "V)");
    }
    table.setHeader(header);

    for (int m = 0; m <= 50; m += 5) {
        std::vector<std::string> row = {TextTable::num(m)};
        for (const auto *node : nodes) {
            const double pct =
                ring.peakFrequencyPercent(node->vdd, m / 100.0);
            row.push_back(TextTable::num(pct, 1));
            result.seriesPoint("peak_freq_pct_" + node->name, pct);
        }
        table.addRow(row);
    }
    table.print(std::cout);
    result.metric("freq_loss_pct_45nm_20margin",
                  100.0 - ring.peakFrequencyPercent(Volts(1.0), 0.20));
    result.metric("freq_loss_pct_16nm_40margin",
                  100.0 - ring.peakFrequencyPercent(Volts(0.7), 0.40));
    bench::emitResult(result);

    std::cout << "\nKey point (45nm): 20% margin -> "
              << TextTable::num(
                     100.0 - ring.peakFrequencyPercent(Volts(1.0), 0.20),
                     1)
              << "% frequency loss (paper: ~25%).\n"
              << "At 16nm a 40% margin (doubled swing) -> "
              << TextTable::num(
                     100.0 - ring.peakFrequencyPercent(Volts(0.7), 0.40),
                     1)
              << "% loss (paper: >50%).\n";
    return 0;
}
