/**
 * @file
 * Ablations of the noise model's design choices (DESIGN.md Sec 6):
 *
 *  1. Current-edge smoothing (pipeline drain time constant): without
 *     it, high-frequency resonances are over-excited and future-node
 *     tails are unrealistically fat.
 *  2. Droop-detector hysteresis (release factor): event segmentation
 *     — and hence emergency counts — depend on re-arm behaviour.
 *  3. Memory-level parallelism (l2StallScale): stretching L2 stalls
 *     back to full memory latency collapses the event rate and breaks
 *     the droop/stall-ratio coupling.
 *  4. Detailed vs fast core model on the same microbenchmark.
 */

#include <iostream>
#include <memory>

#include "bench_util.hh"
#include "common/table.hh"
#include "cpu/detailed_core.hh"
#include "cpu/fast_core.hh"
#include "noise/droop_detector.hh"
#include "sim/system.hh"
#include "workload/microbench.hh"
#include "workload/spec_suite.hh"

using namespace vsmooth;

namespace {

struct Probe
{
    double droopsPer1k;
    double maxDroopPct;
    double stallRatio;
};

Probe
runSphinx(double smoothingTau, double l2Scale)
{
    sim::SystemConfig cfg;
    cfg.coreCurrent.smoothingTauCycles = smoothingTau;
    sim::System sys(cfg);
    auto schedule = workload::scheduleFor(workload::specByName("sphinx"),
                                          800'000, true);
    for (auto &phase : schedule.phases)
        phase.l2StallScale = l2Scale;
    sys.addCore(std::make_unique<cpu::FastCore>(schedule, 11));
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::idleSchedule(1000), 43));
    sys.run(800'000);
    return {1000.0 * sys.scope().fractionBelow(-sim::kIdleMargin),
            sys.scope().maxDroop() * 100,
            sys.core(0).counters().stallRatio()};
}

} // namespace

int
main()
{
    auto result = bench::makeResult("ablation_noise_model");
    {
        TextTable t("Ablation 1: current-edge smoothing tau (cycles)");
        t.setHeader({"tau", "droops/1K", "max droop (%)"});
        for (double tau : {0.0, 1.0, 2.0, 3.0, 5.0}) {
            const auto p = runSphinx(tau, 1.0);
            t.addRow({TextTable::num(tau, 1),
                      TextTable::num(p.droopsPer1k, 1),
                      TextTable::num(p.maxDroopPct, 2)});
            result.seriesPoint("smoothing_droops_per_1k", p.droopsPer1k);
            result.seriesPoint("smoothing_max_droop_pct", p.maxDroopPct);
        }
        t.print(std::cout);
        std::cout << "\n";
    }
    {
        TextTable t("Ablation 2: droop-detector release factor");
        t.setHeader({"release", "emergency events @2.3% (per 1M)"});
        // One fixed voltage trace, re-segmented by different
        // hysteresis settings.
        sim::SystemConfig cfg;
        sim::System sys(cfg);
        sys.addCore(std::make_unique<cpu::FastCore>(
            workload::scheduleFor(workload::specByName("sphinx"),
                                  1'000'000, true),
            11));
        sys.addCore(std::make_unique<cpu::FastCore>(
            workload::idleSchedule(1000), 43));
        std::vector<double> releases = {0.1, 0.3, 0.5, 0.75, 0.9};
        std::vector<noise::DroopDetector> detectors;
        for (double r : releases)
            detectors.emplace_back(sim::kIdleMargin, r);
        for (int i = 0; i < 1'000'000; ++i) {
            sys.tick();
            for (auto &d : detectors)
                d.feed(sys.deviation());
        }
        for (std::size_t k = 0; k < releases.size(); ++k) {
            t.addRow({TextTable::num(releases[k], 2),
                      TextTable::num(detectors[k].eventCount())});
            result.seriesPoint(
                "release_events_per_1m",
                static_cast<double>(detectors[k].eventCount()));
        }
        t.print(std::cout);
        std::cout << "\n";
    }
    {
        TextTable t("Ablation 3: memory-level parallelism (L2 stall "
                    "scale)");
        t.setHeader({"l2StallScale", "droops/1K", "stall ratio"});
        for (double s : {0.25, 0.5, 1.0, 2.0, 4.0}) {
            const auto p = runSphinx(2.0, s);
            t.addRow({TextTable::num(s, 2),
                      TextTable::num(p.droopsPer1k, 1),
                      TextTable::num(p.stallRatio, 2)});
            result.seriesPoint("l2scale_droops_per_1k", p.droopsPer1k);
            result.seriesPoint("l2scale_stall_ratio", p.stallRatio);
        }
        t.print(std::cout);
        std::cout << "\n";
    }
    {
        TextTable t("Ablation 4: detailed vs fast core (microbenchmarks)");
        t.setHeader({"microbenchmark", "model", "p2p (%)", "stall ratio"});
        for (auto kind : workload::kEventMicrobenchmarks) {
            for (bool detailed : {true, false}) {
                sim::SystemConfig cfg;
                sim::System sys(cfg);
                std::unique_ptr<cpu::InstructionSource> stream;
                if (detailed) {
                    stream = workload::makeMicrobenchmark(kind, 7);
                    sys.addCore(std::make_unique<cpu::DetailedCore>(
                        cpu::DetailedCoreParams{}, *stream));
                } else {
                    sys.addCore(std::make_unique<cpu::FastCore>(
                        workload::microbenchmarkSchedule(kind, 1000),
                        7));
                }
                sys.addCore(std::make_unique<cpu::FastCore>(
                    workload::idleSchedule(1000), 43));
                sys.run(1'000'000);
                t.addRow(
                    {std::string(workload::microbenchName(kind)),
                     detailed ? "detailed" : "fast",
                     TextTable::num(
                         sys.scope().visualPeakToPeak() * 100, 2),
                     TextTable::num(
                         sys.core(0).counters().stallRatio(), 2)});
                result.metric(
                    std::string("p2p_pct_") +
                        std::string(workload::microbenchName(kind)) +
                        (detailed ? "_detailed" : "_fast"),
                    sys.scope().visualPeakToPeak() * 100);
            }
        }
        t.print(std::cout);
    }
    bench::emitResult(result);
    return 0;
}
