/**
 * @file
 * Adaptive margin under co-scheduling: does voltage smoothing let the
 * closed-loop controller run a thinner margin?
 *
 * A six-benchmark pool is paired three ways: SPECrate-style (two
 * copies of the same program launched together, so their instruction
 * streams run in lockstep and their current transients align), by the
 * Random policy (the paper's control), and by the droop-aware policy
 * (its proposal). Every scheduled pair then runs with the PI margin
 * controller closing the loop on the simulated ring-oscillator
 * sensor. Homogeneous lockstep pairs stack their di/dt spikes in the
 * same cycle and force the controller to bank a wide guard band; the
 * noise-aware pairing mixes unlike programs whose transients cannot
 * align, so the controller sees shallower worst-case droops and
 * settles a thinner margin — the end-to-end payoff the paper's
 * scheduling section argues for, measured directly as sustained guard
 * band rather than droop counts.
 */

#include <iostream>
#include <memory>

#include "bench_util.hh"
#include "common/table.hh"
#include "sched/policy.hh"

using namespace vsmooth;

namespace {

constexpr Cycles kCyclesPerPair = 400'000;

/** Mixed-noise pool: memory-bound droop generators (mcf, lbm, milc)
 *  alongside compute-steady programs (hmmer, namd, povray), so the
 *  pairing policy has real smoothing headroom to exploit. */
std::vector<workload::SpecBenchmark>
makeSuite()
{
    std::vector<workload::SpecBenchmark> suite;
    for (const char *name :
         {"mcf", "lbm", "milc", "hmmer", "namd", "povray"})
        suite.push_back(workload::specByName(name));
    return suite;
}

sim::SystemConfig
controllerConfig()
{
    sim::SystemConfig cfg;
    // The future-chip package (ProcN-style decap scaling): enough
    // noise that margin policy matters.
    cfg.package = pdn::PackageConfig::core2duo().withDecapFraction(0.1);
    cfg.osTickInterval = 0;
    cfg.enableMarginController = true;
    cfg.marginControllerParams.updateInterval = 5'000;
    cfg.recoveryCostCycles = 600;
    return cfg;
}

struct ScheduleOutcome
{
    /** Cycle-weighted mean margin across all pairs of the schedule. */
    double avgMargin = 0.0;
    /** Mean settled (final) margin. */
    double finalMargin = 0.0;
    std::uint64_t violations = 0;
    double droopsPer1k = 0.0;
};

ScheduleOutcome
runSchedule(const sched::Schedule &schedule,
            const std::vector<workload::SpecBenchmark> &suite)
{
    ScheduleOutcome o;
    for (std::size_t i = 0; i < schedule.size(); ++i) {
        const auto &p = schedule[i];
        sim::System sys(controllerConfig());
        // Seeds derive from the pair's *contents*, not its slot, so
        // both policies measure identical per-pair realizations and
        // differ only in how they paired the pool. Two copies of the
        // same program get the same seed and thus run in lockstep —
        // the phase-aligned worst case a SPECrate-style launch
        // produces on real hardware.
        sys.addCore(std::make_unique<cpu::FastCore>(
            workload::scheduleFor(suite[p.a], kCyclesPerPair, true),
            101 + 7 * p.a));
        sys.addCore(std::make_unique<cpu::FastCore>(
            workload::scheduleFor(suite[p.b], kCyclesPerPair, true),
            101 + 7 * p.b));
        sys.run(kCyclesPerPair);

        const auto *mc = sys.marginController();
        o.avgMargin += mc->averageMargin();
        o.finalMargin += mc->margin();
        o.violations += mc->widenings();
        o.droopsPer1k +=
            1000.0 * sys.scope().fractionBelow(-sim::kIdleMargin);
    }
    const double n = static_cast<double>(schedule.size());
    o.avgMargin /= n;
    o.finalMargin /= n;
    o.droopsPer1k /= n;
    return o;
}

} // namespace

int
main()
{
    const auto suite = makeSuite();

    sched::OracleConfig ocfg;
    ocfg.system.package =
        pdn::PackageConfig::core2duo().withDecapFraction(0.1);
    ocfg.cyclesPerPair = 60'000;
    ocfg.droopMargin = sim::kProc3DroopMargin;
    // Let the pre-run phase see what SPECrate launches really cost:
    // lockstep self-pairs stack their transients, and the droop-aware
    // policy must steer around them.
    ocfg.alignedSelfPairs = true;
    const sched::OracleMatrix matrix(suite, ocfg);

    // Two copies of each program -> six pairs per schedule.
    std::vector<std::size_t> pool;
    for (std::size_t c = 0; c < 2; ++c)
        for (std::size_t i = 0; i < suite.size(); ++i)
            pool.push_back(i);

    Rng rng(2026);
    const auto specRateSched = sched::specRateSchedule(matrix);
    const auto randomSched = sched::buildSchedule(
        pool, matrix, sched::PolicyKind::Random, rng);
    const auto droopSched = sched::buildSchedule(
        pool, matrix, sched::PolicyKind::DroopWorstFirst, rng);

    auto pairList = [&](const sched::Schedule &s) {
        std::string out;
        for (const auto &p : s) {
            if (!out.empty())
                out += " ";
            out += suite[p.a].name + "+" + suite[p.b].name;
        }
        return out;
    };
    std::cout << "SPECrate pairs:    " << pairList(specRateSched) << "\n";
    std::cout << "Random pairs:      " << pairList(randomSched) << "\n";
    std::cout << "Droop-aware pairs: " << pairList(droopSched) << "\n";

    const ScheduleOutcome specRate = runSchedule(specRateSched, suite);
    const ScheduleOutcome random = runSchedule(randomSched, suite);
    const ScheduleOutcome droop = runSchedule(droopSched, suite);
    const double advantage = specRate.avgMargin - droop.avgMargin;

    TextTable t("Adaptive margin under co-scheduling "
                "(6 pairs/schedule, PI controller, ProcN decap)");
    t.setHeader({"schedule", "avg margin (%)", "final margin (%)",
                 "violations", "droops/1k"});
    auto row = [&](const char *name, const ScheduleOutcome &o) {
        t.addRow({name, TextTable::num(100.0 * o.avgMargin, 3),
                  TextTable::num(100.0 * o.finalMargin, 3),
                  TextTable::num(o.violations),
                  TextTable::num(o.droopsPer1k, 2)});
    };
    row("SPECrate", specRate);
    row("Random", random);
    row("Droop-aware", droop);
    t.print(std::cout);

    auto result = bench::makeResult("adaptive_margin");
    result.metric("avg_margin_specrate", specRate.avgMargin);
    result.metric("avg_margin_random", random.avgMargin);
    result.metric("avg_margin_droop", droop.avgMargin);
    result.metric("final_margin_random", random.finalMargin);
    result.metric("final_margin_droop", droop.finalMargin);
    result.metric("violations_random",
                  static_cast<double>(random.violations));
    result.metric("violations_droop",
                  static_cast<double>(droop.violations));
    result.metric("droops_per_1k_random", random.droopsPer1k);
    result.metric("droops_per_1k_droop", droop.droopsPer1k);
    result.metric("margin_advantage", advantage);
    bench::emitResult(result);

    std::cout << "\nExpected: the droop-aware schedule smooths each"
                 " pair's combined noise, so the controller sustains a"
                 " thinner margin (positive advantage of "
              << TextTable::num(100.0 * advantage, 3)
              << " points here) with fewer violations.\n";
    return 0;
}
