/**
 * @file
 * Fig 19: how many co-schedules meet the typical-case design target
 * ("pass") under IPC vs Droop scheduling, as a % increase over the
 * SPECrate baseline, across recovery costs (Proc3).
 *
 * Paper points: both policies recover ~60 % more passing schedules at
 * fine recovery costs; IPC's benefit decays with cost while Droop
 * stays consistently ahead and wins clearly at coarse (1000+ cycle)
 * recovery — the argument for noise-aware scheduling.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "sched/pass_analysis.hh"
#include "sched/policy.hh"
#include "sim/calibration.hh"

using namespace vsmooth;

int
main()
{
    sched::OracleConfig cfg;
    cfg.system.package =
        pdn::PackageConfig::core2duo().withDecapFraction(0.03);
    cfg.cyclesPerPair = 800'000;
    cfg.droopMargin = sim::kProc3DroopMargin;
    const sched::OracleMatrix matrix(workload::specCpu2006(), cfg);

    // One job pool: two copies of every benchmark (29 pairs formed,
    // comparable to the 29 SPECrate schedules).
    std::vector<std::size_t> pool;
    for (std::size_t i = 0; i < matrix.size(); ++i) {
        pool.push_back(i);
        pool.push_back(i);
    }

    const auto table_rows =
        sched::optimalMarginTable(matrix, sim::recoveryCostSweep(),
                                  /*tolerancePercent=*/1.0);

    TextTable table("Fig 19: passing schedules vs SPECrate (Proc3)");
    table.setHeader({"recovery cost", "SPECrate passes", "IPC passes",
                     "Droop passes", "IPC +%", "Droop +%"});

    Rng rng(7);
    auto result = bench::makeResult("fig19_pass_increase");
    for (const auto &row : table_rows) {
        const auto ipc_sched = sched::buildSchedule(
            pool, matrix, sched::PolicyKind::Ipc, rng);
        const auto droop_sched = sched::buildSchedule(
            pool, matrix, sched::PolicyKind::Droop, rng);

        const int ipc_pass = sched::countPassing(
            ipc_sched, matrix, row.optimalMargin, row.recoveryCost,
            row.expectedImprovementPercent, /*tolerancePercent=*/1.0);
        const int droop_pass = sched::countPassing(
            droop_sched, matrix, row.optimalMargin, row.recoveryCost,
            row.expectedImprovementPercent, /*tolerancePercent=*/1.0);

        auto pct = [&](int passes) {
            if (row.passingSpecRate == 0)
                return std::string(passes > 0 ? "inf" : "0");
            return TextTable::num(
                100.0 * (static_cast<double>(passes) /
                             static_cast<double>(row.passingSpecRate) -
                         1.0),
                0);
        };
        table.addRow({TextTable::num(row.recoveryCost),
                      TextTable::num(row.passingSpecRate),
                      TextTable::num(ipc_pass),
                      TextTable::num(droop_pass), pct(ipc_pass),
                      pct(droop_pass)});
        const std::string cost = TextTable::num(row.recoveryCost);
        result.metric("specrate_passes_cost" + cost,
                      static_cast<double>(row.passingSpecRate));
        result.metric("ipc_passes_cost" + cost,
                      static_cast<double>(ipc_pass));
        result.metric("droop_passes_cost" + cost,
                      static_cast<double>(droop_pass));
    }
    table.print(std::cout);
    std::cout << "\nPaper: ~60% increase for both at 10-cycle recovery;"
                 " IPC's benefit decays with cost; Droop consistently"
                 " outperforms IPC and wins at 1000+ cycles.\n";
    bench::emitResult(result);
    return 0;
}
