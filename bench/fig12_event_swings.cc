/**
 * @file
 * Fig 12: peak-to-peak voltage swing caused by each microarchitectural
 * event microbenchmark on one core, relative to an idling machine.
 *
 * Paper headline: a branch-misprediction pipeline flush produces the
 * largest swing, over 1.7x the idle baseline.
 */

#include <iostream>
#include <memory>

#include "bench_util.hh"
#include "common/table.hh"
#include "cpu/detailed_core.hh"
#include "sim/system.hh"
#include "workload/microbench.hh"

using namespace vsmooth;

namespace {

double
idleVisualP2p()
{
    sim::SystemConfig cfg;
    sim::System sys(cfg);
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::idleSchedule(1000), 42));
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::idleSchedule(1000), 43));
    sys.run(2'000'000);
    return sys.scope().visualPeakToPeak();
}

} // namespace

int
main()
{
    const double idle = idleVisualP2p();
    auto result = bench::makeResult("fig12_event_swings");
    result.metric("idle_p2p_pct", idle * 100);

    TextTable table("Fig 12: event swing relative to idling machine");
    table.setHeader({"event", "p2p (% of Vdd)", "relative to idle",
                     "events/1K cycles", "stall ratio"});

    for (auto kind : workload::kEventMicrobenchmarks) {
        sim::SystemConfig cfg;
        sim::System sys(cfg);
        auto stream = workload::makeMicrobenchmark(kind, 7);
        sys.addCore(std::make_unique<cpu::DetailedCore>(
            cpu::DetailedCoreParams{}, *stream));
        sys.addCore(std::make_unique<cpu::FastCore>(
            workload::idleSchedule(1000), 43));
        sys.run(2'000'000);

        const auto &ctr = sys.core(0).counters();
        std::uint64_t events = 0;
        for (std::size_t c = 0; c < cpu::kNumEventClasses; ++c)
            events += ctr.eventCount(cpu::eventClassCause(c));

        table.addRow(
            {std::string(workload::microbenchName(kind)),
             TextTable::num(sys.scope().visualPeakToPeak() * 100, 2),
             TextTable::num(sys.scope().visualPeakToPeak() / idle, 2),
             TextTable::num(1000.0 * static_cast<double>(events) /
                                static_cast<double>(ctr.cycles()),
                            1),
             TextTable::num(ctr.stallRatio(), 2)});
        result.metric("p2p_rel_" +
                          std::string(workload::microbenchName(kind)),
                      sys.scope().visualPeakToPeak() / idle);
        result.seriesPoint("p2p_pct",
                           sys.scope().visualPeakToPeak() * 100);
    }
    table.print(std::cout);
    bench::emitResult(result);
    std::cout << "\nIdle baseline p2p: " << TextTable::num(idle * 100, 2)
              << "% of Vdd\nPaper: branch mispredictions largest, over"
                 " 1.7x the idle baseline.\n";
    return 0;
}
