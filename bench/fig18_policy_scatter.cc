/**
 * @file
 * Fig 18: batch-schedule outcomes per policy, as (droops, performance)
 * normalized to the SPECrate baseline — the paper's quadrant scatter.
 *
 * Expected placement: Random clusters at (1, 1); IPC improves
 * performance but sits at Random's droop level; Droop minimizes
 * droops with a slight performance gain (quadrant Q1); the hybrid
 * IPC/Droop^n traces the Q1 pareto frontier as n varies.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "sched/pass_analysis.hh"
#include "sched/policy.hh"

using namespace vsmooth;

namespace {

std::vector<std::size_t>
makePool(std::size_t suiteSize, std::size_t copies)
{
    std::vector<std::size_t> pool;
    for (std::size_t c = 0; c < copies; ++c)
        for (std::size_t i = 0; i < suiteSize; ++i)
            pool.push_back(i);
    if (pool.size() % 2 != 0)
        pool.pop_back();
    return pool;
}

} // namespace

int
main()
{
    sched::OracleConfig cfg;
    cfg.system.package =
        pdn::PackageConfig::core2duo().withDecapFraction(0.03);
    cfg.cyclesPerPair = 800'000;
    cfg.droopMargin = sim::kProc3DroopMargin;
    const sched::OracleMatrix matrix(workload::specCpu2006(), cfg);

    // Pool sized so one batch is ~50 pairs, like the paper.
    const auto pool = makePool(matrix.size(), 4); // 58 jobs -> 58 pairs

    TextTable table(
        "Fig 18: schedule outcomes relative to SPECrate (Proc3)");
    table.setHeader({"policy", "droops (rel)", "performance (rel)",
                     "quadrant"});

    auto quadrant = [](const sched::NormalizedMetrics &m) {
        if (m.droops <= 1.0 && m.performance >= 1.0)
            return "Q1 (good both)";
        if (m.droops > 1.0 && m.performance >= 1.0)
            return "Q2 (perf only)";
        if (m.droops > 1.0 && m.performance < 1.0)
            return "Q3 (bad both)";
        return "Q4 (droops only)";
    };

    Rng rng(2026);
    auto result = bench::makeResult("fig18_policy_scatter");

    // 100 random schedules, as in the paper.
    double rand_droops = 0.0, rand_perf = 0.0;
    for (int k = 0; k < 100; ++k) {
        const auto sched = sched::buildSchedule(
            pool, matrix, sched::PolicyKind::Random, rng);
        const auto norm = sched::normalizeAgainstSpecRate(
            sched::evaluateSchedule(sched, matrix), matrix);
        rand_droops += norm.droops;
        rand_perf += norm.performance;
    }
    sched::NormalizedMetrics rand_mean{rand_droops / 100.0,
                                       rand_perf / 100.0};
    table.addRow({"Random (mean of 100)",
                  TextTable::num(rand_mean.droops, 3),
                  TextTable::num(rand_mean.performance, 3),
                  quadrant(rand_mean)});
    result.metric("droops_rel_random", rand_mean.droops);
    result.metric("performance_rel_random", rand_mean.performance);

    for (auto kind : {sched::PolicyKind::Ipc, sched::PolicyKind::Droop}) {
        const auto sched = sched::buildSchedule(pool, matrix, kind, rng);
        const auto norm = sched::normalizeAgainstSpecRate(
            sched::evaluateSchedule(sched, matrix), matrix);
        table.addRow({sched::policyName(kind),
                      TextTable::num(norm.droops, 3),
                      TextTable::num(norm.performance, 3),
                      quadrant(norm)});
        const std::string tag = sched::policyName(kind);
        result.metric("droops_rel_" + tag, norm.droops);
        result.metric("performance_rel_" + tag, norm.performance);
    }
    for (double n : {0.25, 0.5, 1.0, 2.0, 4.0}) {
        const auto sched = sched::buildSchedule(
            pool, matrix, sched::PolicyKind::IpcOverDroopN, rng, n);
        const auto norm = sched::normalizeAgainstSpecRate(
            sched::evaluateSchedule(sched, matrix), matrix);
        table.addRow({"IPC/Droop^" + TextTable::num(n, 2),
                      TextTable::num(norm.droops, 3),
                      TextTable::num(norm.performance, 3),
                      quadrant(norm)});
        result.seriesPoint("hybrid_droops_rel", norm.droops);
        result.seriesPoint("hybrid_performance_rel", norm.performance);
    }
    table.print(std::cout);
    bench::emitResult(result);
    std::cout << "\nPaper: Random ~ SPECrate; IPC boosts performance at"
                 " Random's droop level; Droop minimizes droops (Q1"
                 " with slight perf gain); the hybrid spans the Q1"
                 " pareto frontier.\n";
    return 0;
}
