/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: PDN
 * integration step, core models, full system tick, and the MNA
 * solver. These guard the throughput that makes the 29x29 suite
 * sweeps tractable.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "circuit/transient.hh"
#include "cpu/detailed_core.hh"
#include "cpu/fast_core.hh"
#include "circuit/ac.hh"
#include "pdn/ladder.hh"
#include "pdn/second_order.hh"
#include "sim/system.hh"
#include "workload/microbench.hh"
#include "workload/spec_suite.hh"

using namespace vsmooth;

namespace {

void
BM_SecondOrderPdnStep(benchmark::State &state)
{
    pdn::SecondOrderPdn pdn(pdn::PackageConfig::core2duo(),
                            sim::clockPeriod());
    double load = 8.0;
    for (auto _ : state) {
        load = load == 8.0 ? 11.0 : 8.0;
        benchmark::DoNotOptimize(pdn.step(load));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SecondOrderPdnStep);

void
BM_FastCoreTick(benchmark::State &state)
{
    cpu::FastCore core(
        workload::scheduleFor(workload::specByName("sphinx"), 1'000'000,
                              true),
        42);
    for (auto _ : state)
        benchmark::DoNotOptimize(core.tick());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FastCoreTick);

void
BM_DetailedCoreTick(benchmark::State &state)
{
    auto stream = workload::makeMicrobenchmark(
        workload::MicrobenchKind::L1Miss, 7);
    cpu::DetailedCore core(cpu::DetailedCoreParams{}, *stream);
    for (auto _ : state)
        benchmark::DoNotOptimize(core.tick());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DetailedCoreTick);

void
BM_SystemTickDualCore(benchmark::State &state)
{
    sim::SystemConfig cfg;
    sim::System sys(cfg);
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::scheduleFor(workload::specByName("sphinx"), 1'000'000,
                              true),
        1));
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::scheduleFor(workload::specByName("mcf"), 1'000'000,
                              true),
        2));
    for (auto _ : state)
        sys.tick();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SystemTickDualCore);

void
BM_LadderTransientStep(benchmark::State &state)
{
    auto net = pdn::buildLadder(pdn::PackageConfig::core2duo(), 2);
    circuit::TransientSolver solver(net.net, Seconds(0.1e-9));
    for (auto _ : state)
        solver.step();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LadderTransientStep);

void
BM_ImpedancePoint(benchmark::State &state)
{
    auto net = pdn::buildLadder(pdn::PackageConfig::core2duo(), 1);
    double f = 1e6;
    for (auto _ : state) {
        benchmark::DoNotOptimize(circuit::drivingPointImpedance(
            net.net, net.dieNode, Hertz(f)));
        f = f < 5e8 ? f * 1.01 : 1e6;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ImpedancePoint);

} // namespace

BENCHMARK_MAIN();
