/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: PDN
 * integration step, core models, full system tick, and the MNA
 * solver. These guard the throughput that makes the 29x29 suite
 * sweeps tractable.
 */

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "circuit/transient.hh"
#include "common/parallel.hh"
#include "common/simd.hh"
#include "cpu/detailed_core.hh"
#include "cpu/fast_core.hh"
#include "circuit/ac.hh"
#include "dsp/primitives.hh"
#include "pdn/ladder.hh"
#include "pdn/second_order.hh"
#include "sched/oracle_matrix.hh"
#include "sim/system.hh"
#include "workload/microbench.hh"
#include "workload/spec_suite.hh"

using namespace vsmooth;

namespace {

void
BM_SecondOrderPdnStep(benchmark::State &state)
{
    pdn::SecondOrderPdn pdn(pdn::PackageConfig::core2duo(),
                            sim::clockPeriod());
    double load = 8.0;
    for (auto _ : state) {
        load = load == 8.0 ? 11.0 : 8.0;
        benchmark::DoNotOptimize(pdn.step(load));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SecondOrderPdnStep);

// -------------------------------------------------------------------
// dsp primitive layer (BENCH_pr8): per-sample throughput of the block
// kernels every hot path now delegates to. Items are samples, so
// items_per_second reads directly as samples/s per primitive.

constexpr std::size_t kDspBlock = 256;

/** Deterministic activity-like input block in [lo, hi). */
std::vector<double>
dspInput(double lo, double hi)
{
    std::vector<double> in(kDspBlock);
    std::uint64_t x = 0x9e3779b97f4a7c15ULL;
    for (double &v : in) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        v = lo + (hi - lo) * (static_cast<double>(x >> 11) * 0x1.0p-53);
    }
    return in;
}

void
BM_DspSmoothSlewBlock(benchmark::State &state)
{
    const auto in = dspInput(3.0, 9.0);
    std::vector<double> out(kDspBlock);
    dsp::SmoothSlew chain{2.0, 1.0 / 3.0, 0.4, 5.0};
    for (auto _ : state) {
        chain.processBlock(in.data(), out.data(), kDspBlock);
        benchmark::DoNotOptimize(chain.prev);
    }
    state.SetItemsProcessed(state.iterations() * kDspBlock);
}
BENCHMARK(BM_DspSmoothSlewBlock);

void
BM_DspSumColumns2(benchmark::State &state)
{
    const auto in0 = dspInput(3.0, 9.0);
    const auto in1 = dspInput(4.0, 8.0);
    std::vector<double> out(kDspBlock);
    dsp::SmoothSlew chains[2] = {{2.0, 1.0 / 3.0, 0.4, 5.0},
                                 {2.0, 1.0 / 3.0, 0.4, 6.0}};
    const double *const cols[2] = {in0.data(), in1.data()};
    for (auto _ : state) {
        dsp::processSumColumns(chains, cols, out.data(), kDspBlock);
        benchmark::DoNotOptimize(chains[0].prev);
    }
    state.SetItemsProcessed(state.iterations() * kDspBlock);
}
BENCHMARK(BM_DspSumColumns2);

void
BM_DspActivityMapBlock(benchmark::State &state)
{
    const auto in = dspInput(-0.2, 2.8);
    std::vector<double> out(kDspBlock);
    const dsp::ActivityMap map{3.0, 1.5, 4.2};
    for (auto _ : state) {
        map.processBlock(in.data(), out.data(), kDspBlock);
        benchmark::DoNotOptimize(out[kDspBlock - 1]);
    }
    state.SetItemsProcessed(state.iterations() * kDspBlock);
}
BENCHMARK(BM_DspActivityMapBlock);

void
BM_DspBiquadBlock(benchmark::State &state)
{
    const auto load = dspInput(10.0, 40.0);
    std::vector<double> out(kDspBlock);
    pdn::PackageConfig cfg;
    cfg.rippleFraction = 0.0;
    pdn::SecondOrderPdn pdn(cfg, sim::clockPeriod());
    const auto bs = pdn.cursor();
    dsp::BiquadRecurrence biquad{bs.m00, bs.m01, bs.m10,    bs.m11,
                                 bs.n00, bs.n01, bs.n10,    bs.n11,
                                 bs.vdd, bs.rc,  bs.invVdd,
                                 bs.iL,  bs.vC,  bs.vDie};
    for (auto _ : state) {
        biquad.processBlock(load.data(), out.data(), kDspBlock);
        benchmark::DoNotOptimize(biquad.vDie);
    }
    state.SetItemsProcessed(state.iterations() * kDspBlock);
}
BENCHMARK(BM_DspBiquadBlock);

void
BM_DspRippleBlock(benchmark::State &state)
{
    std::vector<double> out(kDspBlock);
    const dsp::RippleOscillator osc{0.009 * 1.15, 1e-6};
    const double dt = sim::clockPeriod().value();
    double t = 0.0;
    for (auto _ : state) {
        osc.processBlock(t, dt, out.data(), kDspBlock);
        t += dt * static_cast<double>(kDspBlock);
        benchmark::DoNotOptimize(out[kDspBlock - 1]);
    }
    state.SetItemsProcessed(state.iterations() * kDspBlock);
}
BENCHMARK(BM_DspRippleBlock);

/** The full PDN block step on the default (rippled) configuration —
 *  the path the cached-ripple optimization targets. */
void
BM_DspPdnStepBlockRipple(benchmark::State &state)
{
    const auto load = dspInput(10.0, 40.0);
    std::vector<double> out(kDspBlock);
    pdn::SecondOrderPdn pdn(pdn::PackageConfig::core2duo(),
                            sim::clockPeriod());
    for (auto _ : state) {
        pdn.stepBlock(load.data(), out.data(), kDspBlock);
        benchmark::DoNotOptimize(out[kDspBlock - 1]);
    }
    state.SetItemsProcessed(state.iterations() * kDspBlock);
}
BENCHMARK(BM_DspPdnStepBlockRipple);

/** The fused cross-lane kernel at the active dispatch level: Arg
 *  lanes x 2 cores x 256 cycles per call (pin VSMOOTH_SIMD to
 *  compare kernel levels at a fixed width). Items are lane-cycles. */
void
BM_DspLaneStep(benchmark::State &state)
{
    const auto kLanes = static_cast<std::size_t>(state.range(0));
    constexpr std::size_t kCores = 2;
    std::vector<double> steady(kCores * kLanes * kDspBlock);
    std::vector<double> total(kLanes * kDspBlock);
    std::vector<double> deviation(kLanes * kDspBlock);
    {
        const auto in = dspInput(4.0, 10.0);
        for (std::size_t i = 0; i < steady.size(); ++i)
            steady[i] = in[i % kDspBlock];
    }
    simd::LaneStepArgs args;
    args.n = kDspBlock;
    args.lanes = kLanes;
    args.stride = kLanes;
    args.cores = kCores;
    for (std::size_t l = 0; l < kLanes; ++l) {
        for (std::size_t c = 0; c < kCores; ++c)
            args.steady[c][l] =
                steady.data() + (c * kLanes + l) * kDspBlock;
        args.total[l] = total.data() + l * kDspBlock;
        args.deviation[l] = deviation.data() + l * kDspBlock;
        args.tau[l] = 2.0;
        args.alpha[l] = 1.0 / 3.0;
        args.slew[l] = 0.4;
        for (std::size_t c = 0; c < kCores; ++c)
            args.prev[c][l] = 5.0;
        args.m00[l] = 0.995;
        args.m01[l] = -0.012;
        args.m10[l] = 0.018;
        args.m11[l] = 0.993;
        args.n00[l] = 0.006;
        args.n01[l] = 0.0004;
        args.n10[l] = 0.0002;
        args.n11[l] = -0.008;
        args.vdd[l] = 1.15;
        args.invVdd[l] = 1.0 / 1.15;
        args.rcDamp[l] = 0.0012;
        args.dtStep[l] = sim::clockPeriod().value();
        args.rippleAmp[l] = 0.009 * 1.15;
        args.ripplePeriod[l] = 1e-6;
        args.iL[l] = 20.0;
        args.vC[l] = 1.14;
        args.vDie[l] = 1.14;
        args.tTime[l] = 0.0;
    }
    const simd::LaneStepFn step = simd::kernels().laneStep;
    if (!step) {
        state.SkipWithError("no laneStep kernel at the active level");
        return;
    }
    for (auto _ : state) {
        step(args);
        benchmark::DoNotOptimize(args.vDie[0]);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kLanes) *
                            kDspBlock);
}
BENCHMARK(BM_DspLaneStep)->Arg(8)->Arg(16);

void
BM_FastCoreTick(benchmark::State &state)
{
    cpu::FastCore core(
        workload::scheduleFor(workload::specByName("sphinx"), 1'000'000,
                              true),
        42);
    for (auto _ : state)
        benchmark::DoNotOptimize(core.tick());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FastCoreTick);

void
BM_DetailedCoreTick(benchmark::State &state)
{
    auto stream = workload::makeMicrobenchmark(
        workload::MicrobenchKind::L1Miss, 7);
    cpu::DetailedCore core(cpu::DetailedCoreParams{}, *stream);
    for (auto _ : state)
        benchmark::DoNotOptimize(core.tick());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DetailedCoreTick);

void
BM_SystemTickDualCore(benchmark::State &state)
{
    sim::SystemConfig cfg;
    sim::System sys(cfg);
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::scheduleFor(workload::specByName("sphinx"), 1'000'000,
                              true),
        1));
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::scheduleFor(workload::specByName("mcf"), 1'000'000,
                              true),
        2));
    for (auto _ : state)
        sys.tick();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SystemTickDualCore);

/**
 * The batched block pipeline on the same 2-core no-mitigation system
 * as BM_SystemTickDualCore. Items are simulated cycles, so
 * items_per_second is directly comparable with the per-tick baseline
 * above; the acceptance bar for the batched path is >= 2x.
 */
void
BM_SystemTickBlocked(benchmark::State &state)
{
    sim::SystemConfig cfg;
    sim::System sys(cfg);
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::scheduleFor(workload::specByName("sphinx"), 1'000'000,
                              true),
        1));
    sys.addCore(std::make_unique<cpu::FastCore>(
        workload::scheduleFor(workload::specByName("mcf"), 1'000'000,
                              true),
        2));
    constexpr Cycles kChunk = 16 * sim::System::kBlockCycles;
    for (auto _ : state)
        sys.run(kChunk);
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kChunk));
}
BENCHMARK(BM_SystemTickBlocked);

void
BM_LadderTransientStep(benchmark::State &state)
{
    auto net = pdn::buildLadder(pdn::PackageConfig::core2duo(), 2);
    circuit::TransientSolver solver(net.net, Seconds(0.1e-9));
    for (auto _ : state)
        solver.step();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LadderTransientStep);

/**
 * parallelFor scaling over a fixed population of System::run tasks.
 * Arg = job count (0 = hardware default); wall-clock speedup vs
 * Arg(1) is the number the perf trajectory tracks.
 */
void
BM_ParallelForSystemRun(benchmark::State &state)
{
    setJobs(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        parallelFor(0, 8, [](std::size_t i) {
            sim::SystemConfig cfg;
            cfg.osTickInterval = sim::kCompressedOsTick;
            sim::System sys(cfg);
            sys.addCore(std::make_unique<cpu::FastCore>(
                workload::scheduleFor(workload::specByName("sphinx"),
                                      40'000, true),
                i + 1));
            sys.addCore(std::make_unique<cpu::FastCore>(
                workload::scheduleFor(workload::specByName("mcf"),
                                      40'000, true),
                i + 100));
            sys.run(40'000);
            benchmark::DoNotOptimize(sys.scope().maxDroop());
        });
    }
    state.SetItemsProcessed(state.iterations() * 8);
    setJobs(0);
}
BENCHMARK(BM_ParallelForSystemRun)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(0)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/**
 * OracleMatrix pre-run phase on a reduced 8-benchmark suite (36 pairs
 * + 8 singles). Arg = job count; the full 29-benchmark sweep scales
 * the same way.
 */
void
BM_OracleMatrixBuild8(benchmark::State &state)
{
    setJobs(static_cast<std::size_t>(state.range(0)));
    const auto &full = workload::specCpu2006();
    const std::vector<workload::SpecBenchmark> suite(full.begin(),
                                                     full.begin() + 8);
    sched::OracleConfig cfg;
    cfg.cyclesPerPair = 60'000;
    for (auto _ : state) {
        const sched::OracleMatrix m(suite, cfg);
        benchmark::DoNotOptimize(m.pair(0, 1).ipc);
    }
    state.SetItemsProcessed(state.iterations() * (8 * 9 / 2 + 8));
    setJobs(0);
}
BENCHMARK(BM_OracleMatrixBuild8)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/**
 * Population-style sweep of single-benchmark runs drained through the
 * scenario-lane engine. Arg = lane width (1 = degenerate single-lane
 * groups, i.e. the pre-lane execution path); items are simulated
 * cycles, and the Arg(1) vs widest-lane ratio is the SIMD speedup
 * BENCH_pr5.json records (Arg(16) runs the AVX-512 backend where the
 * host supports it, BENCH_pr10.json's headline row).
 */
void
BM_PopulationLaned(benchmark::State &state)
{
    const std::string lanes = std::to_string(state.range(0));
    setenv("VSMOOTH_LANES", lanes.c_str(), 1);
    setJobs(1);
    const auto &suite = workload::specCpu2006();
    constexpr std::size_t kRuns = 16;
    constexpr Cycles kCycles = 40'000;
    for (auto _ : state) {
        bench::runLanedSweep(
            kRuns,
            [&](std::size_t t) {
                return bench::prepareSingle(suite[t % suite.size()],
                                            kCycles, 1.0,
                                            1 + 17ULL * (t + 1));
            },
            [&](std::size_t, sim::System &sys) {
                benchmark::DoNotOptimize(sys.scope().maxDroop());
            });
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kRuns * kCycles));
    unsetenv("VSMOOTH_LANES");
    setJobs(0);
}
BENCHMARK(BM_PopulationLaned)
    ->Arg(1)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/**
 * OracleMatrix pre-run phase (reduced 8-benchmark suite) with the
 * lane width pinned. Arg = lane width, one worker thread, so the
 * measured ratio isolates the SIMD lockstep gain from thread scaling.
 */
void
BM_OracleMatrixLaned(benchmark::State &state)
{
    const std::string lanes = std::to_string(state.range(0));
    setenv("VSMOOTH_LANES", lanes.c_str(), 1);
    setJobs(1);
    const auto &full = workload::specCpu2006();
    const std::vector<workload::SpecBenchmark> suite(full.begin(),
                                                     full.begin() + 8);
    sched::OracleConfig cfg;
    cfg.cyclesPerPair = 60'000;
    for (auto _ : state) {
        const sched::OracleMatrix m(suite, cfg);
        benchmark::DoNotOptimize(m.pair(0, 1).ipc);
    }
    state.SetItemsProcessed(state.iterations() * (8 * 9 / 2 + 8));
    unsetenv("VSMOOTH_LANES");
    setJobs(0);
}
BENCHMARK(BM_OracleMatrixLaned)
    ->Arg(1)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/**
 * Long-horizon population sweep under phase-sampled execution.
 * Arg = sampling mode (0 = exact, 1 = auto); 4 single-benchmark
 * systems x 30M cycles = 120M simulated cycles per iteration, on one
 * worker thread so the ratio isolates the sampling gain. Items are
 * simulated cycles; the off vs auto items_per_second ratio is the
 * sampled-execution speedup BENCH_pr6.json records. The workloads
 * are the suite's long flat phases — the stationary stretches the
 * sampler exists to fast-forward (phase-rich workloads degrade
 * gracefully toward exact execution and are covered by the fuzz
 * property, not this throughput figure).
 */
void
BM_PopulationSampled(benchmark::State &state)
{
    setenv("VSMOOTH_SAMPLING", state.range(0) == 0 ? "off" : "auto", 1);
    setJobs(1);
    constexpr const char *kBenchmarks[] = {"sphinx", "lbm", "hmmer",
                                           "gemsfdtd"};
    constexpr std::size_t kRuns = 4;
    constexpr Cycles kCycles = 30'000'000;
    for (auto _ : state) {
        for (std::size_t t = 0; t < kRuns; ++t) {
            // Default (uncompressed) OS-tick cadence: at this horizon
            // the real 1.86M-cycle interval is the representative
            // configuration — the compressed bench-run tick would cap
            // every fast-forward at its next injection.
            sim::SystemConfig cfg;
            sim::System sys(cfg);
            const std::uint64_t seed = 1 + 17ULL * (t + 1);
            sys.addCore(std::make_unique<cpu::FastCore>(
                workload::scheduleFor(
                    workload::specByName(kBenchmarks[t]), kCycles,
                    true),
                seed + 1));
            sys.addCore(std::make_unique<cpu::FastCore>(
                workload::idleSchedule(1000), seed + 2));
            sys.run(kCycles);
            benchmark::DoNotOptimize(sys.scope().maxDroop());
        }
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kRuns * kCycles));
    unsetenv("VSMOOTH_SAMPLING");
    setJobs(0);
}
BENCHMARK(BM_PopulationSampled)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void
BM_ImpedancePoint(benchmark::State &state)
{
    auto net = pdn::buildLadder(pdn::PackageConfig::core2duo(), 1);
    double f = 1e6;
    for (auto _ : state) {
        benchmark::DoNotOptimize(circuit::drivingPointImpedance(
            net.net, net.dieNode, Hertz(f)));
        f = f < 5e8 ? f * 1.01 : 1e6;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ImpedancePoint);

} // namespace

BENCHMARK_MAIN();
